package serve

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/kernels"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/sched"
	"repro/internal/sim"
)

// Config describes one serving run.
type Config struct {
	// Machine is the PMH to serve on. Required.
	Machine *machine.Desc
	// Scheduler is the scheduler name ("ws", "pws", "sb", "sbd", ...).
	Scheduler string
	// Arrivals generates the request stream. Required, single-use.
	Arrivals ArrivalProcess
	// Admission gates dispatch; nil means AlwaysAdmit. Single-use.
	Admission Admission
	// Seed drives scheduler randomness.
	Seed uint64
	// Cost overrides the scheduler cost model (zero value = defaults).
	Cost sched.CostModel
	// LinksUsed restricts DRAM links (bandwidth); 0 = all.
	LinksUsed int
	// PageSize sets the DRAM-link placement granularity; 0 = proportional.
	PageSize int64
	// SampleEvery records a queue-depth/occupancy sample every so many
	// cycles; 0 disables the time series.
	SampleEvery int64
	// MaxStrands aborts runaway runs; 0 = no limit.
	MaxStrands uint64
	// SkipVerify skips per-job output verification after the run.
	SkipVerify bool
}

// jobState pairs a request's record with its (lazily built) kernel.
type jobState struct {
	rec JobRecord
	k   kernels.Kernel
}

// server wires arrivals and admission to the engine: it is the sim.Source
// of a serving run. All methods run on the engine goroutine.
type server struct {
	m   *machine.Desc
	sp  *mem.Space
	arr ArrivalProcess
	adm Admission
	// sb is set when the scheduler is space-bounded, for occupancy
	// sampling.
	sb *sched.SB

	// head is the next arrival pulled from the process but not yet
	// admitted/queued/dropped.
	head *Arrival
	// ready holds admitted jobs (tag, release time) awaiting engine
	// pickup: arrivals admitted on the spot never pass through it, only
	// wait-queue releases do.
	ready []release
	// queue holds tags of jobs parked by admission, FIFO.
	queue    []uint64
	inFlight int

	jobs    []jobState
	samples []Sample
}

type release struct {
	tag  uint64
	time int64
}

// peek pulls the next arrival from the process when none is buffered.
func (s *server) peek() *Arrival {
	if s.head == nil {
		if a, ok := s.arr.Next(); ok {
			s.head = &a
		}
	}
	return s.head
}

// Pending implements sim.Source.
func (s *server) Pending() (int64, bool) {
	t, ok := int64(0), false
	if len(s.ready) > 0 {
		t, ok = s.ready[0].time, true
	}
	if a := s.peek(); a != nil && (!ok || a.Time < t) {
		t, ok = a.Time, true
	}
	return t, ok
}

// Pop implements sim.Source: consume the earliest pending event — a
// wait-queue release (dispatch), or an arrival (admit, park, or drop).
func (s *server) Pop() (sim.Injection, bool) {
	if len(s.ready) > 0 {
		if a := s.peek(); a == nil || s.ready[0].time <= a.Time {
			r := s.ready[0]
			s.ready = s.ready[1:]
			return s.dispatch(r.tag, r.time), true
		}
	}
	a := *s.peek()
	s.head = nil
	tag := uint64(len(s.jobs))
	s.jobs = append(s.jobs, jobState{rec: JobRecord{
		Tag: tag, Spec: a.Spec, Arrival: a.Time, Admitted: -1, Start: -1, End: -1,
	}})
	if s.adm.Admit(a.Time, s.inFlight) {
		s.inFlight++
		return s.dispatch(tag, a.Time), true
	}
	if cap := s.adm.QueueCap(); cap < 0 || len(s.queue) < cap {
		s.queue = append(s.queue, tag)
		return sim.Injection{}, false
	}
	s.jobs[tag].rec.Dropped = true
	return sim.Injection{}, false
}

// dispatch materializes the job's kernel in the shared address space and
// hands its root to the engine.
func (s *server) dispatch(tag uint64, now int64) sim.Injection {
	st := &s.jobs[tag]
	st.rec.Admitted = now
	k, err := core.NewKernel(st.rec.Spec.Kernel, s.sp, s.m, core.BenchOpts{N: st.rec.Spec.N, Seed: st.rec.Spec.Seed})
	if err != nil {
		// Mix/trace validation makes this unreachable; the engine's
		// recover turns it into a run error rather than a crash.
		panic(fmt.Sprintf("serve: job %d: %v", tag, err))
	}
	st.k = k
	return sim.Injection{Tag: tag, Job: k.Root()}
}

// Done implements sim.Source: record the completion, notify the arrival
// process (closed-loop feedback), and release parked jobs the policy now
// admits.
func (s *server) Done(tag uint64, r sim.RootStats) {
	st := &s.jobs[tag]
	st.rec.Start = r.Start
	st.rec.End = r.End
	s.inFlight--
	s.arr.JobDone(r.End)
	for len(s.queue) > 0 && s.adm.Admit(r.End, s.inFlight) {
		tag := s.queue[0]
		s.queue = s.queue[1:]
		s.inFlight++
		s.ready = append(s.ready, release{tag: tag, time: r.End})
	}
}

// sample records one time-series point; wired to sim.Config.Sampler.
func (s *server) sample(now int64) {
	smp := Sample{Time: now, Queued: len(s.queue), InFlight: s.inFlight}
	if s.sb != nil {
		for id := 0; id < s.m.NodesAt(1); id++ {
			smp.L3Occ = append(smp.L3Occ, s.sb.Occupancy(1, id))
		}
	}
	s.samples = append(s.samples, smp)
}

// Run executes one serving run to drain: all arrivals generated, admitted
// jobs completed, outputs verified, metrics aggregated.
func Run(cfg Config) (*Report, error) {
	if cfg.Machine == nil {
		return nil, fmt.Errorf("serve: Config requires a Machine")
	}
	if cfg.Arrivals == nil {
		return nil, fmt.Errorf("serve: Config requires an ArrivalProcess")
	}
	if cfg.Admission == nil {
		cfg.Admission = AlwaysAdmit()
	}
	sc := sched.New(cfg.Scheduler)
	if sc == nil {
		return nil, fmt.Errorf("serve: unknown scheduler %q", cfg.Scheduler)
	}
	srv := &server{
		m:   cfg.Machine,
		sp:  core.SpaceFor(cfg.Machine, cfg.LinksUsed, cfg.PageSize),
		arr: cfg.Arrivals,
		adm: cfg.Admission,
	}
	if sb, ok := sc.(*sched.SB); ok {
		srv.sb = sb
	}
	simCfg := sim.Config{
		Machine:    cfg.Machine,
		Space:      srv.sp,
		Scheduler:  sc,
		Cost:       cfg.Cost,
		Seed:       cfg.Seed,
		MaxStrands: cfg.MaxStrands,
	}
	if cfg.SampleEvery > 0 {
		simCfg.Sampler = srv.sample
		simCfg.SampleEvery = cfg.SampleEvery
	}
	res, err := sim.RunStream(simCfg, srv)
	if err != nil {
		return nil, err
	}
	if !cfg.SkipVerify {
		for i := range srv.jobs {
			st := &srv.jobs[i]
			if st.k != nil && st.rec.Completed() {
				if err := st.k.Verify(); err != nil {
					return nil, fmt.Errorf("serve: job %d (%s) produced wrong output under %s: %w",
						st.rec.Tag, st.rec.Spec, sc.Name(), err)
				}
			}
		}
	}
	return srv.report(sc.Name(), res), nil
}

// report aggregates the run into a Report.
func (s *server) report(schedName string, res *sim.Result) *Report {
	r := &Report{
		Scheduler:   schedName,
		Workload:    s.arr.Name(),
		Policy:      s.adm.Name(),
		StillQueued: len(s.queue),
		Samples:     s.samples,
		Result:      res,
	}
	var lat, qd, svc []float64
	for i := range s.jobs {
		rec := s.jobs[i].rec
		r.Jobs = append(r.Jobs, rec)
		r.Arrivals++
		switch {
		case rec.Dropped:
			r.Dropped++
		case rec.Admitted >= 0:
			r.Admitted++
		}
		if rec.Completed() {
			r.Completed++
			lat = append(lat, float64(rec.Latency()))
			qd = append(qd, float64(rec.QueueDelay()))
			svc = append(svc, float64(rec.Service()))
		}
	}
	r.Latency = quantiles(lat)
	r.QueueDelay = quantiles(qd)
	r.Service = quantiles(svc)
	if wall := res.WallSeconds(); wall > 0 {
		r.ThroughputPerSec = float64(r.Completed) / wall
	}
	return r
}
