package serve

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/machine"
)

func testMachine() *machine.Desc { return machine.TwoSocket(4, 1<<16, 1<<12) }

func testMix(t *testing.T) *Mix {
	t.Helper()
	m, err := NewMix(
		MixEntry{Kernel: "rrm", N: 2000, Weight: 2},
		MixEntry{Kernel: "quicksort", N: 3000, Weight: 1},
	)
	if err != nil {
		t.Fatalf("NewMix: %v", err)
	}
	return m
}

// TestServeDeterminism is the regression test for the serving pipeline's
// determinism: the same seed and configuration must yield byte-identical
// metrics — every job timestamp, every sample, every counter — across two
// independent runs, for every scheduler in the paper's lineup.
func TestServeDeterminism(t *testing.T) {
	for _, sc := range []string{"ws", "pws", "sb", "sbd"} {
		t.Run(sc, func(t *testing.T) {
			run := func() string {
				// Arrival processes and admission policies are stateful and
				// single-use: construct everything fresh per run.
				rep, err := Run(Config{
					Machine:   testMachine(),
					Scheduler: sc,
					Arrivals: NewPoisson(PoissonConfig{
						MeanGap: 20_000,
						MaxJobs: 6,
						Mix:     testMix(t),
						Seed:    42,
					}),
					Admission:   NewBoundedQueue(3, -1),
					Seed:        7,
					SampleEvery: 100_000,
				})
				if err != nil {
					t.Fatalf("Run(%s): %v", sc, err)
				}
				return rep.Fingerprint()
			}
			a, b := run(), run()
			if a != b {
				t.Errorf("%s: two identically-configured runs diverged:\n--- run 1 ---\n%s--- run 2 ---\n%s", sc, a, b)
			}
		})
	}
}

// TestServeDrainsBelowSaturation checks liveness: at an arrival rate well
// below saturation every request completes and the admission queue drains.
func TestServeDrainsBelowSaturation(t *testing.T) {
	rep, err := Run(Config{
		Machine:   testMachine(),
		Scheduler: "ws",
		Arrivals: NewPoisson(PoissonConfig{
			MeanGap: 2_000_000,
			MaxJobs: 8,
			Mix:     testMix(t),
			Seed:    1,
		}),
		Seed: 1,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Arrivals != 8 || rep.Completed != 8 || rep.Dropped != 0 || rep.StillQueued != 0 {
		t.Fatalf("below saturation want 8/8 completed, 0 dropped, 0 queued; got %s", rep)
	}
	for _, j := range rep.Jobs {
		if !(j.Arrival <= j.Admitted && j.Admitted <= j.Start && j.Start < j.End) {
			t.Errorf("job %d has inconsistent lifecycle: arr=%d adm=%d start=%d end=%d",
				j.Tag, j.Arrival, j.Admitted, j.Start, j.End)
		}
	}
	if rep.Latency.P99 < rep.Latency.P50 || rep.Latency.Max < rep.Latency.P99 {
		t.Errorf("quantiles out of order: %+v", rep.Latency)
	}
	if rep.ThroughputPerSec <= 0 {
		t.Errorf("throughput not positive: %v", rep.ThroughputPerSec)
	}
}

// burstTrace returns n near-simultaneous arrivals (one cycle apart).
func burstTrace(t *testing.T, n int) *Trace {
	t.Helper()
	var as []Arrival
	for i := 0; i < n; i++ {
		as = append(as, Arrival{
			Time: int64(i),
			Spec: JobSpec{Kernel: "rrm", N: 1500, Seed: uint64(i + 1)},
		})
	}
	return NewTrace(as)
}

func TestServeBoundedQueue(t *testing.T) {
	rep, err := Run(Config{
		Machine:   testMachine(),
		Scheduler: "ws",
		Arrivals:  burstTrace(t, 4),
		Admission: NewBoundedQueue(1, 1),
		Seed:      3,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// One slot, one queue entry: job 0 runs, job 1 waits, jobs 2 and 3 drop.
	if rep.Completed != 2 || rep.Dropped != 2 || rep.StillQueued != 0 {
		t.Fatalf("queue(1,1) on 4-burst: want 2 completed / 2 dropped / 0 queued, got %s", rep)
	}
	var done []JobRecord
	for _, j := range rep.Jobs {
		if j.Completed() {
			done = append(done, j)
		}
	}
	if len(done) != 2 || done[1].Admitted < done[0].End {
		t.Fatalf("MaxInFlight=1 violated: %+v", done)
	}
	if done[1].QueueDelay() <= 0 {
		t.Errorf("queued job should have waited, delay=%d", done[1].QueueDelay())
	}
}

func TestServeTokenBucket(t *testing.T) {
	rep, err := Run(Config{
		Machine:   testMachine(),
		Scheduler: "ws",
		Arrivals:  burstTrace(t, 5),
		// The interval is far beyond the run length: only the initial burst
		// of two tokens admits anything.
		Admission: NewTokenBucket(1<<40, 2),
		Seed:      3,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Admitted != 2 || rep.Completed != 2 || rep.Dropped != 3 {
		t.Fatalf("token(huge,2) on 5-burst: want 2 admitted / 3 dropped, got %s", rep)
	}
}

func TestTokenBucketRefill(t *testing.T) {
	tb := NewTokenBucket(100, 2)
	if !tb.Admit(0, 0) || !tb.Admit(0, 0) {
		t.Fatal("bucket should start with its full burst")
	}
	if tb.Admit(50, 0) {
		t.Fatal("no token should accrue before one interval")
	}
	if !tb.Admit(100, 0) {
		t.Fatal("one token should accrue after one interval")
	}
	if tb.Admit(150, 0) {
		t.Fatal("token already spent; next accrues at 200")
	}
	if !tb.Admit(1_000_000, 0) || !tb.Admit(1_000_000, 0) {
		t.Fatal("long idle should refill to burst")
	}
	if tb.Admit(1_000_000, 0) {
		t.Fatal("refill must cap at burst")
	}
}

func TestServeClosedLoop(t *testing.T) {
	const conc = 2
	rep, err := Run(Config{
		Machine:   testMachine(),
		Scheduler: "ws",
		Arrivals: NewClosedLoop(ClosedLoopConfig{
			Concurrency: conc,
			TotalJobs:   6,
			Think:       1000,
			Mix:         testMix(t),
			Seed:        5,
		}),
		Seed: 5,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Arrivals != 6 || rep.Completed != 6 || rep.Dropped != 0 {
		t.Fatalf("closed loop: want all 6 completed, got %s", rep)
	}
	// The concurrency invariant: never more than conc jobs between admission
	// and completion at once.
	for _, j := range rep.Jobs {
		overlap := 0
		for _, o := range rep.Jobs {
			if o.Admitted <= j.Admitted && j.Admitted < o.End {
				overlap++
			}
		}
		if overlap > conc {
			t.Fatalf("closed loop exceeded concurrency %d at t=%d (%d in flight)", conc, j.Admitted, overlap)
		}
	}
}

func TestServeSamplerRecordsOccupancy(t *testing.T) {
	m := testMachine()
	rep, err := Run(Config{
		Machine:   m,
		Scheduler: "sb",
		Arrivals: NewPoisson(PoissonConfig{
			MeanGap: 50_000,
			MaxJobs: 4,
			Mix:     testMix(t),
			Seed:    9,
		}),
		Seed:        9,
		SampleEvery: 20_000,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(rep.Samples) == 0 {
		t.Fatal("no samples recorded")
	}
	sockets := m.NodesAt(1)
	prev := int64(-1)
	anyOcc := false
	for _, s := range rep.Samples {
		if s.Time <= prev {
			t.Fatalf("sample times not strictly increasing: %d after %d", s.Time, prev)
		}
		prev = s.Time
		if len(s.L3Occ) != sockets {
			t.Fatalf("sample has %d occupancy entries, machine has %d sockets", len(s.L3Occ), sockets)
		}
		for _, occ := range s.L3Occ {
			if occ > 0 {
				anyOcc = true
			}
		}
	}
	if !anyOcc {
		t.Error("space-bounded run never showed cache occupancy in any sample")
	}
}

func TestServeConfigErrors(t *testing.T) {
	mix := testMix(t)
	arr := func() ArrivalProcess {
		return NewPoisson(PoissonConfig{MeanGap: 1000, MaxJobs: 1, Mix: mix, Seed: 1})
	}
	if _, err := Run(Config{Scheduler: "ws", Arrivals: arr()}); err == nil {
		t.Error("missing machine not rejected")
	}
	if _, err := Run(Config{Machine: testMachine(), Scheduler: "ws"}); err == nil {
		t.Error("missing arrivals not rejected")
	}
	if _, err := Run(Config{Machine: testMachine(), Scheduler: "bogus", Arrivals: arr()}); err == nil {
		t.Error("unknown scheduler not rejected")
	}
}

func TestParseMix(t *testing.T) {
	m, err := ParseMix("rrm:2000,quicksort:3000:2")
	if err != nil {
		t.Fatalf("ParseMix: %v", err)
	}
	if got := m.String(); !strings.Contains(got, "rrm:2000") || !strings.Contains(got, "quicksort:3000:2") {
		t.Errorf("round-trip lost entries: %q", got)
	}
	for _, bad := range []string{"", "nope:100", "rrm:x", "rrm:100:0", "rrm"} {
		if _, err := ParseMix(bad); err == nil {
			t.Errorf("ParseMix(%q) should fail", bad)
		}
	}
}

func TestParseAdmission(t *testing.T) {
	cases := map[string]string{
		"always":      "always",
		"queue:4:16":  "queue(4,16)",
		"token:500:8": "token(500,8)",
	}
	for in, want := range cases {
		a, err := ParseAdmission(in)
		if err != nil {
			t.Fatalf("ParseAdmission(%q): %v", in, err)
		}
		if a.Name() != want {
			t.Errorf("ParseAdmission(%q).Name() = %q, want %q", in, a.Name(), want)
		}
	}
	for _, bad := range []string{"nope", "queue:0:4", "queue:4", "token:0:1", "token:5:0"} {
		if _, err := ParseAdmission(bad); err == nil {
			t.Errorf("ParseAdmission(%q) should fail", bad)
		}
	}
}

func TestTraceRoundTrip(t *testing.T) {
	orig := []Arrival{
		{Time: 0, Spec: JobSpec{Kernel: "rrm", N: 1000, Seed: 11}},
		{Time: 2500, Spec: JobSpec{Kernel: "quicksort", N: 2000, Seed: 12}},
		{Time: 9000, Spec: JobSpec{Kernel: "matmul", N: 32, Seed: 13}},
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, orig); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	got, err := ParseTrace(&buf, 0)
	if err != nil {
		t.Fatalf("ParseTrace: %v", err)
	}
	if len(got) != len(orig) {
		t.Fatalf("round trip: %d arrivals, want %d", len(got), len(orig))
	}
	for i := range orig {
		if got[i] != orig[i] {
			t.Errorf("arrival %d: got %+v, want %+v", i, got[i], orig[i])
		}
	}
}

func TestParseTraceValidation(t *testing.T) {
	in := "# comment line\n\n100 rrm 2000\n50 quicksort 1000 77\n"
	got, err := ParseTrace(strings.NewReader(in), 99)
	if err != nil {
		t.Fatalf("ParseTrace: %v", err)
	}
	if len(got) != 2 {
		t.Fatalf("want 2 arrivals, got %d", len(got))
	}
	if got[0].Spec.Seed != 99+seedStep {
		t.Errorf("default seed not derived for seedless line: %+v", got[0])
	}
	if got[1].Spec.Seed != 77 {
		t.Errorf("explicit seed not kept: %+v", got[1])
	}
	for _, bad := range []string{"abc rrm 100", "10 bogus 100", "10 rrm", "10 rrm x"} {
		if _, err := ParseTrace(strings.NewReader(bad), 1); err == nil {
			t.Errorf("ParseTrace(%q) should fail", bad)
		}
	}
}

func TestPoissonMeanGap(t *testing.T) {
	p := NewPoisson(PoissonConfig{MeanGap: 10_000, MaxJobs: 4000, Mix: testMix(t), Seed: 8})
	var last int64
	n := 0
	for {
		a, ok := p.Next()
		if !ok {
			break
		}
		if a.Time < last {
			t.Fatalf("arrival times must be nondecreasing: %d after %d", a.Time, last)
		}
		last = a.Time
		n++
	}
	if n != 4000 {
		t.Fatalf("want 4000 arrivals, got %d", n)
	}
	mean := float64(last) / float64(n)
	if mean < 8_000 || mean > 12_000 {
		t.Errorf("empirical mean gap %.0f far from configured 10000", mean)
	}
}
