// Package shard runs a partitioned replay across per-socket
// sub-simulations on real host cores while keeping the merged result a
// pure function of the inputs.
//
// The partition unit is the simulated socket, not the host goroutine: a
// machine with S sockets always produces exactly S sub-simulations
// (machine.SocketSlice each), whatever the -shards setting. The shard
// count only chooses how many host goroutines those S fixed simulations
// are spread over — socket i runs on goroutine i mod N, and each
// goroutine runs its sockets in increasing socket order. Because every
// sub-simulation is itself deterministic (own machine, own scheduler
// instance, own seed derived only from the socket index) and writes only
// its own slot of the result slice, the merge sees the same S results in
// the same socket order no matter how the goroutines interleave — the
// shard-count invariance the replay fingerprints rely on.
//
// The merge rule follows the canonical completion merge used by the
// cluster router (PR 6): order by a fixed key, never by arrival. Here the
// key is the socket index; wall clock is the max over sockets (the
// sockets run concurrently in simulated time), counts are sums, and the
// fingerprint hashes the per-socket fingerprints in socket order.
package shard

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"sync"

	"repro/internal/job"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/sched"
	"repro/internal/sim"
)

// Root is one partition piece to replay: a root job plus the load weight
// LPT assignment balances (op bytes; see dagtrace.Piece).
type Root struct {
	Job    job.Job
	Weight int64
}

// Config configures a sharded replay.
type Config struct {
	// Machine is the full multi-socket machine. Its socket count (the
	// memory level's fanout) fixes the number of sub-simulations; Links
	// must equal it (one DRAM link per socket), as on the Xeon 7560.
	Machine *machine.Desc
	// MakeSched constructs one scheduler instance per socket. Required:
	// scheduler instances hold run state and must not be shared.
	MakeSched func() sched.Scheduler
	// Cost is the scheduler/runtime cost model (zero value = defaults).
	Cost sched.CostModel
	// Seed derives each socket's seed as Seed + (socket+1)*0x9e3779b97f4a7c15.
	Seed uint64
	// Shards is the number of host goroutines (not sub-simulations);
	// values < 1 and values > the socket count are clamped.
	Shards int
	// PageSize is the placement page size for each socket's address space
	// (0 = mem.PageSize). Scaled machines pass their scaled page.
	PageSize int64
	// LinksUsed is the grid's bandwidth knob: b of Machine.Links DRAM
	// links in use (0 means all). A socket slice has exactly one private
	// link, so cross-socket link contention cannot be simulated here;
	// instead each socket's link is derated proportionally — its
	// LineService becomes LineService·Links/LinksUsed — modelling b links
	// of aggregate bandwidth shared evenly by the sockets. Pure integer
	// arithmetic on the config, so results stay a function of the inputs.
	LinksUsed int
}

// Result is the deterministic merge of the per-socket simulations.
type Result struct {
	// WallCycles is the makespan: the max over sockets.
	WallCycles int64
	// Tasks, Strands and Accesses are summed over sockets (Accesses at
	// the innermost cache level, the count trace conservation checks).
	Tasks, Strands uint64
	Accesses       int64
	// Sockets holds each socket's full result in socket order; entries
	// are nil for sockets that received no pieces.
	Sockets []*sim.Result
	// Assignment[s] lists the indices into the roots slice that socket s
	// replayed, in injection order.
	Assignment [][]int
}

// Fingerprint hashes the per-socket fingerprints in socket order; idle
// sockets contribute a fixed marker. Equal fingerprints mean every
// socket's simulation was bit-identical.
func (r *Result) Fingerprint() string {
	h := sha256.New()
	for s, res := range r.Sockets {
		fmt.Fprintf(h, "socket %d\n", s)
		if res == nil {
			fmt.Fprintf(h, "idle\n")
			continue
		}
		h.Write([]byte(res.Fingerprint()))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// multiRoot injects a fixed list of roots at simulated time zero.
type multiRoot struct {
	jobs []job.Job
	next int
}

func (m *multiRoot) Pending() (int64, bool) { return 0, m.next < len(m.jobs) }

func (m *multiRoot) Pop() (sim.Injection, bool) {
	inj := sim.Injection{Tag: uint64(m.next), Job: m.jobs[m.next]}
	m.next++
	return inj, true
}

func (m *multiRoot) Done(uint64, sim.RootStats) {}

// Replay distributes the roots over the machine's sockets (longest
// processing time first) and simulates every socket, using up to
// cfg.Shards host goroutines. The returned Result is identical for every
// shard count; see the package comment for why.
func Replay(cfg Config, roots []Root) (*Result, error) {
	m := cfg.Machine
	if m == nil || cfg.MakeSched == nil {
		return nil, fmt.Errorf("shard: Machine and MakeSched are required")
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	sockets := m.Levels[0].Fanout
	if m.Links != sockets {
		return nil, fmt.Errorf("shard: machine %q has %d DRAM links for %d sockets; sharded replay needs one link per socket",
			m.Name, m.Links, sockets)
	}
	if len(roots) == 0 {
		return nil, fmt.Errorf("shard: no roots to replay")
	}
	links := cfg.LinksUsed
	if links == 0 {
		links = m.Links
	}
	if links < 1 || links > m.Links {
		return nil, fmt.Errorf("shard: LinksUsed %d out of range 1..%d", cfg.LinksUsed, m.Links)
	}
	pageSize := cfg.PageSize
	if pageSize == 0 {
		pageSize = mem.PageSize
	}

	// LPT: heaviest root first (ties: original order), each to the
	// least-loaded socket (ties: lowest socket).
	order := make([]int, len(roots))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return roots[order[a]].Weight > roots[order[b]].Weight
	})
	load := make([]int64, sockets)
	assign := make([][]int, sockets)
	for _, ri := range order {
		best := 0
		for s := 1; s < sockets; s++ {
			if load[s] < load[best] {
				best = s
			}
		}
		load[best] += roots[ri].Weight
		assign[best] = append(assign[best], ri)
	}
	// Injection order within a socket follows the original root order so
	// the assignment, not the LPT visit order, is what a reader sees.
	for s := range assign {
		sort.Ints(assign[s])
	}

	res := &Result{Sockets: make([]*sim.Result, sockets), Assignment: assign}
	errs := make([]error, sockets)
	shards := cfg.Shards
	if shards < 1 {
		shards = 1
	}
	if shards > sockets {
		shards = sockets
	}
	runSocket := func(s int) {
		if len(assign[s]) == 0 {
			return
		}
		jobs := make([]job.Job, len(assign[s]))
		for i, ri := range assign[s] {
			jobs[i] = roots[ri].Job
		}
		sm := machine.SocketSlice(m, s)
		if links < m.Links {
			// Bandwidth derating (see Config.LinksUsed): multiply before
			// dividing so the ratio survives integer arithmetic.
			sm.LineService = m.LineService * int64(m.Links) / int64(links)
		}
		sp := mem.NewSpacePaged(sm.Links, sm.Links, pageSize)
		r, err := sim.RunStream(sim.Config{
			Machine:   sm,
			Space:     sp,
			Scheduler: cfg.MakeSched(),
			Cost:      cfg.Cost,
			Seed:      cfg.Seed + uint64(s+1)*0x9e3779b97f4a7c15,
		}, &multiRoot{jobs: jobs})
		res.Sockets[s], errs[s] = r, err
	}
	if shards == 1 {
		for s := 0; s < sockets; s++ {
			runSocket(s)
		}
	} else {
		var wg sync.WaitGroup
		for g := 0; g < shards; g++ {
			wg.Add(1)
			// Each goroutine owns a fixed, disjoint set of sockets and a
			// disjoint slice of the results; the merge below reads them only
			// after Wait, in socket order — host interleaving cannot reach
			// the merged result.
			go func(g int) { //schedlint:ignore nondeterminism socket fan-out: disjoint result slots, deterministic socket->goroutine map, joined before merge
				defer wg.Done()
				for s := g; s < sockets; s += shards {
					runSocket(s)
				}
			}(g)
		}
		wg.Wait()
	}
	for s := 0; s < sockets; s++ {
		if errs[s] != nil {
			return nil, fmt.Errorf("shard: socket %d: %w", s, errs[s])
		}
	}
	for _, r := range res.Sockets {
		if r == nil {
			continue
		}
		if r.WallCycles > res.WallCycles {
			res.WallCycles = r.WallCycles
		}
		res.Tasks += r.Tasks
		res.Strands += r.Strands
		if r.Hier != nil {
			inner := r.Machine.NumLevels() - 1
			res.Accesses += r.Hier.HitsAt(inner) + r.Hier.MissesAt(inner)
		}
	}
	return res, nil
}
