package shard

import (
	"runtime"
	"testing"

	"repro/internal/dagtrace"
	"repro/internal/job"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/sched"
	"repro/internal/sim"
)

// recordParts records a deterministic fork/join program on m and
// partitions its trace into k pieces.
func recordParts(t *testing.T, m *machine.Desc, k int) (*dagtrace.Trace, []Root) {
	t.Helper()
	sp := mem.NewSpace(m.Links, m.Links)
	a := sp.NewF64("a", 4096)
	size := func(lo, hi int) int64 { return int64(hi-lo) * 8 }
	root := job.FuncJob(func(ctx job.Ctx) {
		ctx.Fork(job.For(1, 4095, 16, size, func(c job.Ctx, i int) {
			a.Write(c, i, a.Read(c, i-1)+1)
		}), job.For(0, 4096, 16, size, func(c job.Ctx, i int) {
			a.Write(c, i, float64(i))
			c.Work(5)
		}))
	})
	rec := dagtrace.NewRecorder()
	if _, err := sim.Run(sim.Config{
		Machine: m, Space: sp, Scheduler: sched.NewWS(), Seed: 11, Listener: rec,
	}, root); err != nil {
		t.Fatal(err)
	}
	tr, err := rec.Finish()
	if err != nil {
		t.Fatal(err)
	}
	p, err := dagtrace.PartitionTrace(tr, k)
	if err != nil {
		t.Fatal(err)
	}
	roots := make([]Root, len(p.Pieces))
	for i, pc := range p.Pieces {
		roots[i] = Root{Job: pc.Root, Weight: pc.Weight}
	}
	return tr, roots
}

// TestShardCountInvariance is the tentpole determinism guarantee: the
// merged result of a sharded replay is bit-identical whether the fixed
// per-socket simulations run on 1 goroutine, 2, or one per core. Run
// under -race this also proves the fan-out shares no simulation state.
func TestShardCountInvariance(t *testing.T) {
	m := machine.TwoSocket(4, 1<<16, 1<<12)
	tr, roots := recordParts(t, m, 4)
	cfg := Config{Machine: m, MakeSched: func() sched.Scheduler { return sched.NewWS() }, Seed: 11}
	var base *Result
	for _, shards := range []int{1, 2, runtime.GOMAXPROCS(0), 64} {
		cfg.Shards = shards
		res, err := Replay(cfg, roots)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if res.Tasks != tr.TaskCount || res.Strands != tr.StrandCount || res.Accesses != tr.AccessOps {
			t.Fatalf("shards=%d: replayed %d tasks / %d strands / %d accesses, trace recorded %d / %d / %d",
				shards, res.Tasks, res.Strands, res.Accesses, tr.TaskCount, tr.StrandCount, tr.AccessOps)
		}
		if base == nil {
			base = res
			continue
		}
		if res.Fingerprint() != base.Fingerprint() {
			t.Errorf("shards=%d: fingerprint differs from shards=1", shards)
		}
		if res.WallCycles != base.WallCycles {
			t.Errorf("shards=%d: wall %d differs from shards=1 wall %d", shards, res.WallCycles, base.WallCycles)
		}
	}
	if base.WallCycles <= 0 {
		t.Fatal("sharded replay reported non-positive wall clock")
	}
}

// TestShardStreamedReplay runs the sharded replay over a framed trace:
// concurrent sub-simulations lease scripts from one shared frame window,
// and the result must match the whole-arena sharded replay exactly.
func TestShardStreamedReplay(t *testing.T) {
	m := machine.TwoSocket(4, 1<<16, 1<<12)
	tr, arenaRoots := recordParts(t, m, 4)
	path := t.TempDir() + "/trace.dgts"
	if err := dagtrace.WriteFramed(tr, path, 512); err != nil {
		t.Fatal(err)
	}
	st, err := dagtrace.OpenStream(path, 4096)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	p, err := dagtrace.PartitionStream(st, 4)
	if err != nil {
		t.Fatal(err)
	}
	roots := make([]Root, len(p.Pieces))
	for i, pc := range p.Pieces {
		roots[i] = Root{Job: pc.Root, Weight: pc.Weight}
	}
	cfg := Config{Machine: m, MakeSched: func() sched.Scheduler { return sched.NewWS() }, Seed: 11}
	cfg.Shards = 1
	arena, err := Replay(cfg, arenaRoots)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 2} {
		cfg.Shards = shards
		res, err := Replay(cfg, roots)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if res.Fingerprint() != arena.Fingerprint() {
			t.Errorf("shards=%d: streamed sharded replay differs from arena sharded replay", shards)
		}
	}
	if peak := st.PeakResidentBytes(); peak >= st.OpBytes() {
		t.Errorf("sharded streamed replay held %d bytes resident of a %d-byte op stream", peak, st.OpBytes())
	}
}

// TestShardAssignmentBalance: LPT must put work on every socket when
// there are at least as many pieces as sockets, and the assignment must
// be identical across calls.
func TestShardAssignmentBalance(t *testing.T) {
	m := machine.TwoSocket(4, 1<<16, 1<<12)
	_, roots := recordParts(t, m, 4)
	cfg := Config{Machine: m, MakeSched: func() sched.Scheduler { return sched.NewWS() }, Seed: 11, Shards: 1}
	a, err := Replay(cfg, roots)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Replay(cfg, roots)
	if err != nil {
		t.Fatal(err)
	}
	for s := range a.Assignment {
		if len(a.Assignment[s]) == 0 {
			t.Errorf("socket %d received no pieces from %d-piece LPT", s, len(roots))
		}
		if len(a.Assignment[s]) != len(b.Assignment[s]) {
			t.Fatalf("assignment differs between identical calls")
		}
		for i := range a.Assignment[s] {
			if a.Assignment[s][i] != b.Assignment[s][i] {
				t.Fatalf("assignment differs between identical calls")
			}
		}
	}
}

// TestShardLinksUsedDerating pins the bandwidth knob: replaying with
// fewer links in use must slow the simulated clock (per-socket
// LineService derated by Links/LinksUsed), stay deterministic across
// shard counts, never change trace conservation totals, and reject
// out-of-range values.
func TestShardLinksUsedDerating(t *testing.T) {
	m := machine.TwoSocket(4, 1<<16, 1<<12)
	_, roots := recordParts(t, m, 4)
	mk := func() sched.Scheduler { return sched.NewWS() }
	full, err := Replay(Config{Machine: m, MakeSched: mk, Seed: 11}, roots)
	if err != nil {
		t.Fatal(err)
	}
	var prev *Result
	for _, shards := range []int{1, 2} {
		half, err := Replay(Config{Machine: m, MakeSched: mk, Seed: 11, Shards: shards, LinksUsed: 1}, roots)
		if err != nil {
			t.Fatal(err)
		}
		if half.WallCycles <= full.WallCycles {
			t.Errorf("1 of %d links: wall %d not above full-bandwidth %d", m.Links, half.WallCycles, full.WallCycles)
		}
		if half.Tasks != full.Tasks || half.Strands != full.Strands || half.Accesses != full.Accesses {
			t.Errorf("derating changed conservation totals: %+v vs %+v", half, full)
		}
		if prev != nil && half.Fingerprint() != prev.Fingerprint() {
			t.Errorf("derated fingerprint differs across shard counts")
		}
		prev = half
	}
	// LinksUsed == Links must be exactly the default.
	all, err := Replay(Config{Machine: m, MakeSched: mk, Seed: 11, LinksUsed: m.Links}, roots)
	if err != nil {
		t.Fatal(err)
	}
	if all.Fingerprint() != full.Fingerprint() {
		t.Error("LinksUsed=Links differs from the all-links default")
	}
	for _, bad := range []int{-1, m.Links + 1} {
		if _, err := Replay(Config{Machine: m, MakeSched: mk, Seed: 11, LinksUsed: bad}, roots); err == nil {
			t.Errorf("LinksUsed=%d accepted", bad)
		}
	}
}

// TestShardRejectsLinkMismatch: a machine without one DRAM link per
// socket cannot be sharded along sockets.
func TestShardRejectsLinkMismatch(t *testing.T) {
	m := machine.TwoSocket(2, 1<<14, 1<<12)
	m.Links = 1
	_, roots := recordParts(t, machine.TwoSocket(2, 1<<14, 1<<12), 2)
	cfg := Config{Machine: m, MakeSched: func() sched.Scheduler { return sched.NewWS() }, Seed: 1, Shards: 1}
	if _, err := Replay(cfg, roots); err == nil {
		t.Fatal("link/socket mismatch accepted")
	}
}
