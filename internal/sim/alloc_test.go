package sim

import (
	"runtime"
	"testing"

	"repro/internal/job"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/sched"
)

// steadyAllocs runs a single long strand performing `chunks` Work calls and
// returns the total heap allocations of the run.
func steadyAllocs(t *testing.T, chunks int) uint64 {
	t.Helper()
	m := machine.Flat(1, 1<<16)
	sp := mem.NewSpace(m.Links, m.Links)
	root := job.FuncJob(func(ctx job.Ctx) {
		for i := 0; i < chunks; i++ {
			ctx.Work(1000)
		}
	})
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	if _, err := Run(Config{Machine: m, Space: sp, Scheduler: sched.NewWS(), Seed: 1}, root); err != nil {
		t.Fatal(err)
	}
	runtime.ReadMemStats(&after)
	return after.Mallocs - before.Mallocs
}

// TestEngineSteadyStateAllocFree asserts the per-chunk engine step — spend,
// chunk handoff, scheduler poll — is allocation-free: quadrupling the
// simulated work (thousands more chunk boundaries) must not change the
// run's allocation count beyond noise.
func TestEngineSteadyStateAllocFree(t *testing.T) {
	small := steadyAllocs(t, 2_000)
	large := steadyAllocs(t, 8_000)
	// ~1,500 extra chunk boundaries between the two runs; allow a little
	// slack for runtime-internal allocations (GC metadata, timers).
	if large > small+50 {
		t.Errorf("allocations scale with simulated work: 2000 chunks -> %d allocs, 8000 chunks -> %d allocs", small, large)
	}
}
