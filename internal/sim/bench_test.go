package sim

import (
	"testing"

	"repro/internal/job"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/sched"
)

// BenchmarkEngineParallelFor measures whole-engine throughput: a parallel
// map of 64K elements over 8 cores, including scheduler call-backs, cache
// simulation and the worker handshake.
func BenchmarkEngineParallelFor(b *testing.B) {
	m := machine.TwoSocket(4, 1<<18, 1<<13)
	for i := 0; i < b.N; i++ {
		sp := mem.NewSpace(m.Links, m.Links)
		arr := sp.NewF64("xs", 1<<16)
		root := job.For(0, arr.Len(), 256,
			func(lo, hi int) int64 { return int64(hi-lo) * 8 },
			func(ctx job.Ctx, i int) { arr.Write(ctx, i, 1) })
		if _, err := Run(Config{Machine: m, Space: sp, Scheduler: sched.NewWS(), Seed: 1}, root); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(1<<16)*float64(b.N)/b.Elapsed().Seconds(), "accesses/s")
}

// BenchmarkEngineForkJoin measures fork/join bookkeeping throughput with
// minimal per-strand work.
func BenchmarkEngineForkJoin(b *testing.B) {
	m := machine.Flat(4, 1<<16)
	var tree func(depth int) job.Job
	tree = func(depth int) job.Job {
		return job.FuncJob(func(ctx job.Ctx) {
			ctx.Work(50)
			if depth == 0 {
				return
			}
			ctx.Fork(nil, tree(depth-1), tree(depth-1))
		})
	}
	for i := 0; i < b.N; i++ {
		sp := mem.NewSpace(m.Links, m.Links)
		if _, err := Run(Config{Machine: m, Space: sp, Scheduler: sched.NewWS(), Seed: 1}, tree(10)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(2047*float64(b.N)/b.Elapsed().Seconds(), "tasks/s")
}

// BenchmarkEngineSB measures the space-bounded scheduler's end-to-end
// overhead relative to BenchmarkEngineParallelFor's WS baseline.
func BenchmarkEngineSB(b *testing.B) {
	m := machine.TwoSocket(4, 1<<18, 1<<13)
	for i := 0; i < b.N; i++ {
		sp := mem.NewSpace(m.Links, m.Links)
		arr := sp.NewF64("xs", 1<<16)
		root := job.For(0, arr.Len(), 256,
			func(lo, hi int) int64 { return int64(hi-lo) * 8 },
			func(ctx job.Ctx, i int) { arr.Write(ctx, i, 1) })
		if _, err := Run(Config{Machine: m, Space: sp, Scheduler: sched.New("sb"), Seed: 1}, root); err != nil {
			b.Fatal(err)
		}
	}
}
