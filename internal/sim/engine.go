// Package sim is the runtime system of the experimental framework (§3):
// it binds one simulated thread to every core of a PMH machine, drives the
// program's strands through the scheduler's add/get/done call-backs, and
// meters everything — per-core active time, per-call-back scheduler
// overheads, empty-queue time, and exact cache misses at every level.
//
// The engine is a deterministic discrete-event simulator. Each worker
// (core) is a goroutine that executes strand code; the engine goroutine
// resumes exactly one worker at a time — always the one with the smallest
// simulated clock — for a bounded chunk of simulated cycles, so strands on
// different cores interleave in the shared caches at fine granularity while
// the whole simulation stays single-threaded-deterministic: a run is a pure
// function of (machine, program, scheduler, cost model, seed).
package sim

import (
	"fmt"

	"repro/internal/cachesim"
	"repro/internal/fault"
	"repro/internal/job"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/sched"
	"repro/internal/xrand"
)

// Time-accounting buckets (§3.3's five components).
const (
	BucketActive = iota // executing program code
	BucketAdd           // add call-back overhead
	BucketDone          // done call-back (and task-end) overhead
	BucketGet           // get call-back overhead
	BucketEmpty         // get returned nothing: idle / load imbalance
	numBuckets
)

// BucketNames labels the buckets in reports.
var BucketNames = [numBuckets]string{"active", "add", "done", "get", "empty"}

// Listener observes scheduling events for tracing; all methods are called
// on the engine goroutine. Any method may be a no-op.
type Listener interface {
	StrandSpawned(s *job.Strand)
	StrandStarted(s *job.Strand)
	StrandEnded(s *job.Strand)
	TaskEnded(t *job.Task, now int64)
}

// TraceListener extends Listener with program-level events: the memory
// accesses and compute charges each strand performs, and the terminal fork
// that ends it. A Listener that also implements TraceListener observes the
// complete schedule-independent computation — enough to replay it later
// under a different scheduler — at the cost of one call per access. All
// methods are called on the engine goroutine while the engine is parked,
// in exact simulated order.
type TraceListener interface {
	Listener
	// StrandAccess reports one memory access performed by strand s, in
	// program order, before its cache cost is simulated.
	StrandAccess(s *job.Strand, a mem.Addr, write bool)
	// StrandWork reports a positive compute charge by strand s.
	StrandWork(s *job.Strand, cycles int64)
	// StrandForked reports the terminal fork of s as it ends: whether a
	// continuation was registered, how many child tasks were forked, and
	// whether futures are involved (ForkFuture body or ForkAwait
	// dependencies). A strand that returned without forking reports
	// (false, 0, false).
	StrandForked(s *job.Strand, hasCont bool, children int, futures bool)
}

// PoolSafe marks a Listener that retains no *job.Task or *job.Strand
// pointer past the event call that delivers it (storing IDs or copied
// field values instead). The engine keeps task/strand pooling enabled
// when the configured Listener declares this; for any other Listener
// pooling is disabled, since a recycled object would mutate under the
// listener's feet.
type PoolSafe interface {
	PoolSafeListener()
}

// Config describes one simulation run.
type Config struct {
	// Machine is the PMH to simulate. Required.
	Machine *machine.Desc
	// Space is the address space holding the program's (pre-allocated)
	// data; its link count must match the machine. Required.
	Space *mem.Space
	// Scheduler maps strands to cores. Required.
	Scheduler sched.Scheduler
	// Cost is the scheduler/runtime cost model; zero value means defaults.
	Cost sched.CostModel
	// Seed drives all scheduler randomness.
	Seed uint64
	// Listener, if non-nil, receives trace events.
	Listener Listener
	// MaxStrands aborts runaway programs; 0 means no limit.
	MaxStrands uint64
	// Sampler, if non-nil, is called on the engine goroutine every
	// SampleEvery simulated cycles (at now = k*SampleEvery), letting the
	// caller record time series (queue depths, cache occupancy) in
	// simulated time.
	Sampler func(now int64)
	// SampleEvery is the sampling period in cycles; 0 disables sampling.
	SampleEvery int64
	// Faults, if non-nil and non-empty, injects deterministic machine
	// perturbations (stragglers, core loss, bandwidth jitter, cache
	// flushes) at their scheduled simulated times. A nil or empty plan
	// leaves every run bit-identical to one without fault support.
	Faults *fault.Plan
}

// Run executes root to completion on the configured machine and scheduler
// and returns the measured Result.
func Run(cfg Config, root job.Job) (*Result, error) {
	if cfg.Machine == nil || cfg.Space == nil || cfg.Scheduler == nil {
		return nil, errConfig()
	}
	if err := cfg.Machine.Validate(); err != nil {
		return nil, errMachine(err)
	}
	if !cfg.Faults.Empty() {
		if err := cfg.Faults.Validate(cfg.Machine); err != nil {
			return nil, errMachine(err)
		}
	}
	normalizeCosts(&cfg)
	e := newEngine(cfg)
	defer e.shutdown()
	return e.run(&oneShot{root: root})
}

func errConfig() error           { return fmt.Errorf("sim: Config requires Machine, Space and Scheduler") }
func errMachine(err error) error { return fmt.Errorf("sim: %w", err) }
func errNilSource() error        { return fmt.Errorf("sim: RunStream requires a Source") }

// normalizeCosts fills cost-model defaults. An idle worker must advance
// its clock or the event loop would spin on it forever; a chunk must be at
// least one cycle.
func normalizeCosts(cfg *Config) {
	if cfg.Cost == (sched.CostModel{}) {
		cfg.Cost = sched.DefaultCosts()
	}
	if cfg.Cost.IdleBackoff < 1 {
		cfg.Cost.IdleBackoff = 1
	}
	if cfg.Cost.ChunkCycles < 1 {
		cfg.Cost.ChunkCycles = 1
	}
}

type engine struct {
	cfg     Config
	m       *machine.Desc
	h       *cachesim.Hierarchy
	sch     sched.Scheduler
	cost    sched.CostModel
	workers []*worker
	heap    workerHeap

	lockFree []int64 // per simulated lock: next free cycle

	nextTaskID   uint64
	nextStrandID uint64
	// curSpawner is the strand whose completion is currently being
	// processed; new strands record it as their dependency source.
	curSpawner   *job.Strand
	totalStrands uint64
	liveStrands  int
	// liveRoots counts injected root tasks that have not yet completed;
	// src is the injection source driving this run.
	liveRoots int
	src       Source
	// roots tracks per-root bookkeeping for Source.Done callbacks. The map
	// is only ever looked up by key (never iterated), so it cannot
	// introduce iteration-order nondeterminism.
	roots map[*job.Task]rootRec
	// nextSample is the simulated time of the next Sampler callback.
	nextSample int64
	// sampling caches "Sampler armed" so the hot paths test one bool.
	sampling bool
	// nextClock/nextID are the heap-order key of the earliest worker left
	// in the heap when the current worker was popped; wctx.pause compares
	// against them to detect boundaries where the engine would re-pop the
	// same worker immediately. Fixed while strand code runs.
	nextClock int64
	nextID    int

	// curBucket attributes Env charges to the call-back being executed.
	curBucket int

	// flt holds fault-injection state (nil when Config.Faults is empty),
	// and nextFault the simulated time of the earliest unapplied fault
	// event (a huge sentinel otherwise), so the hot paths test one int64.
	flt       *faultState
	nextFault int64

	// dynFlushes counts dynamic (injected) cache flushes, surfaced in
	// Result.FaultEvents alongside compiled-plan events.
	dynFlushes int

	// rec receives program-level record events (StrandAccess/StrandWork/
	// StrandForked) when cfg.Listener also implements TraceListener; nil
	// otherwise, so the per-access hot-path cost is a single nil check.
	rec TraceListener

	// pool enables task/strand recycling. Recycling is only sound when no
	// Listener can retain pointers past an object's lifetime; the engine
	// itself drops every reference to a non-root strand at the end of its
	// finishStrand and to a non-root, non-future task once its parent's
	// bookkeeping is updated (futures are excluded because job.Future keeps
	// its bound task forever).
	pool       bool
	strandPool []*job.Strand
	taskPool   []*job.Task
	// pairPool recycles parallel-for fork contexts (job.ForPair). Pairs
	// are reclaimed at the splitting task's end — both children live
	// inside the pair and have completed by then — under the same
	// listener-safety rule as task/strand pooling.
	pairPool []*job.ForPair

	err error
}

func newEngine(cfg Config) *engine {
	e := &engine{
		cfg:  cfg,
		m:    cfg.Machine,
		h:    cachesim.New(cfg.Machine, cfg.Space),
		sch:  cfg.Scheduler,
		cost: cfg.Cost,
		pool: cfg.Listener == nil,
	}
	if _, ok := cfg.Listener.(PoolSafe); ok {
		e.pool = true
	}
	if tl, ok := cfg.Listener.(TraceListener); ok {
		e.rec = tl
	}
	n := e.m.NumCores()
	// Workers live in one backing array (one allocation instead of n);
	// e.workers never reallocates, so interior pointers stay valid.
	backing := make([]worker, n)
	e.workers = make([]*worker, n)
	yield := make(chan yieldMsg)
	exited := make(chan struct{}, n)
	for i := 0; i < n; i++ {
		w := &backing[i]
		w.id = i
		w.leaf = e.m.LeafOf(i)
		w.rng.Seed(cfg.Seed*0x9e3779b97f4a7c15 + uint64(i) + 1)
		w.resume = make(chan struct{})
		w.yield = yield
		w.exited = exited
		w.ctx = wctx{w: w, e: e}
		e.workers[i] = w
		go w.loop(e) //schedlint:ignore nondeterminism baton-pass worker: exactly one goroutine runs at a time, sequenced by resume/yield channels
	}
	e.lockFree = make([]int64, 0, 2*n+8)
	e.flt = newFaultState(&cfg)
	e.nextFault = int64(1)<<62 - 1
	if e.flt != nil && len(e.flt.events) > 0 {
		e.nextFault = e.flt.events[0].Time
	}
	e.sch.Setup(e) // engine implements sched.Env
	return e
}

// shutdown terminates all worker goroutines. Outside engine.step every
// worker is blocked receiving on resume, so closing the channels unwinds
// them all (idle workers exit the loop; paused workers unwind their strand
// via workerStopped).
func (e *engine) shutdown() {
	for _, w := range e.workers {
		close(w.resume)
	}
	// One token per goroutine on the shared exited channel.
	for range e.workers {
		<-e.workers[0].exited
	}
}

// --- sched.Env implementation -------------------------------------------

// Machine implements sched.Env.
func (e *engine) Machine() *machine.Desc { return e.m }

// Cost implements sched.Env.
func (e *engine) Cost() sched.CostModel { return e.cost }

// NewLock implements sched.Env.
func (e *engine) NewLock() int {
	e.lockFree = append(e.lockFree, 0)
	return len(e.lockFree) - 1
}

// Lock implements sched.Env: serialize on the lock in simulated time.
//
//schedlint:hotpath
func (e *engine) Lock(worker, id int, hold int64) {
	w := e.workers[worker]
	start := w.clock
	if e.lockFree[id] > start {
		start = e.lockFree[id]
	}
	e.lockFree[id] = start + hold
	total := (start - w.clock) + hold
	w.clock += total
	w.timers[e.curBucket] += total
}

// Charge implements sched.Env.
//
//schedlint:hotpath
func (e *engine) Charge(worker int, cycles int64) {
	w := e.workers[worker]
	w.clock += cycles
	w.timers[e.curBucket] += cycles
}

// RNG implements sched.Env.
func (e *engine) RNG(worker int) *xrand.Source { return &e.workers[worker].rng }

// --- call-back wrappers with bucket attribution --------------------------

func (e *engine) callAdd(s *job.Strand, w *worker) {
	e.curBucket = BucketAdd
	e.sch.Add(s, w.id)
	e.curBucket = BucketActive
}

func (e *engine) callGet(w *worker) *job.Strand {
	e.curBucket = BucketGet
	before := w.timers[BucketGet]
	s := e.sch.Get(w.id)
	e.curBucket = BucketActive
	if s == nil {
		// §3.3: "the empty queue overhead is the amount of time the
		// scheduler fails to assign work to a thread (get returns null)" —
		// reattribute the whole failed call.
		spent := w.timers[BucketGet] - before
		w.timers[BucketGet] = before
		w.timers[BucketEmpty] += spent
	}
	return s
}

func (e *engine) callDone(s *job.Strand, w *worker) {
	e.curBucket = BucketDone
	e.sch.Done(s, w.id)
	e.curBucket = BucketActive
}

func (e *engine) callTaskEnd(t *job.Task, w *worker) {
	e.curBucket = BucketDone
	e.sch.TaskEnd(t, w.id)
	e.curBucket = BucketActive
}

// --- task/strand lifecycle ------------------------------------------------

// poolSlab is the refill granularity of the task/strand/fork-pair pools:
// a pool miss allocates one slab and hands out its objects individually.
const poolSlab = 64

func (e *engine) newTask(parent *job.Task, j job.Job) *job.Task {
	e.nextTaskID++
	depth := 0
	if parent != nil {
		depth = parent.Depth + 1
	}
	var t *job.Task
	if len(e.taskPool) == 0 && e.pool {
		// Refill the pool a slab at a time: one backing allocation hands
		// out poolSlab objects, so steady-state task churn costs O(peak
		// live / slab) allocations instead of one per pool miss.
		slab := make([]job.Task, poolSlab)
		for i := range slab {
			e.taskPool = append(e.taskPool, &slab[i])
		}
	}
	if n := len(e.taskPool); n > 0 {
		t = e.taskPool[n-1]
		e.taskPool[n-1] = nil
		e.taskPool = e.taskPool[:n-1]
	} else {
		t = new(job.Task)
	}
	*t = job.Task{
		ID:          e.nextTaskID,
		Parent:      parent,
		Depth:       depth,
		Job:         j,
		SizeBytes:   job.SizeOf(j, e.m.Block()),
		AnchorLevel: -1,
		AnchorNode:  -1,
	}
	return t
}

// freeTask recycles an ended task. Callers guarantee nothing holds a
// reference anymore: pooling is off when a Listener is set, root tasks and
// future-bound tasks are never freed, and the engine's own last reads of
// the task precede the free. Zeroing here (not at reuse) turns any missed
// reference into an immediate, loud bug instead of silent state bleed.
func (e *engine) freeTask(t *job.Task) {
	*t = job.Task{}
	e.taskPool = append(e.taskPool, t)
}

// freeStrand recycles a finished non-root strand (see freeTask on safety).
func (e *engine) freeStrand(s *job.Strand) {
	*s = job.Strand{}
	e.strandPool = append(e.strandPool, s)
}

// allocForPair implements job.ForPairAllocator for wctx: parallel-for
// splits draw fork contexts from the engine pool instead of the heap.
func (e *engine) allocForPair() *job.ForPair {
	if len(e.pairPool) == 0 && e.pool {
		slab := make([]job.ForPair, poolSlab)
		for i := range slab {
			e.pairPool = append(e.pairPool, &slab[i])
		}
	}
	if n := len(e.pairPool); n > 0 {
		p := e.pairPool[n-1]
		e.pairPool[n-1] = nil
		e.pairPool = e.pairPool[:n-1]
		return p
	}
	return new(job.ForPair)
}

// freeForPair recycles a surrendered fork pair (see freeTask on zeroing).
func (e *engine) freeForPair(p *job.ForPair) {
	*p = job.ForPair{}
	e.pairPool = append(e.pairPool, p)
}

func (e *engine) newStrand(t *job.Task, j job.Job, kind job.Kind, now int64) *job.Strand {
	e.nextStrandID++
	e.totalStrands++
	size := job.StrandSizeOf(j, e.m.Block())
	if size < 0 {
		size = t.SizeBytes // paper's default: strand inherits task size
	}
	var s *job.Strand
	if len(e.strandPool) == 0 && e.pool {
		slab := make([]job.Strand, poolSlab)
		for i := range slab {
			e.strandPool = append(e.strandPool, &slab[i])
		}
	}
	if n := len(e.strandPool); n > 0 {
		s = e.strandPool[n-1]
		e.strandPool[n-1] = nil
		e.strandPool = e.strandPool[:n-1]
	} else {
		s = new(job.Strand)
	}
	*s = job.Strand{
		ID:        e.nextStrandID,
		Task:      t,
		Job:       j,
		Kind:      kind,
		SizeBytes: size,
		Spawn:     now,
		Proc:      -1,
		SpawnedBy: e.curSpawner,
	}
	return s
}

// spawn registers a new strand with the scheduler on behalf of w.
func (e *engine) spawn(s *job.Strand, w *worker) {
	if e.cfg.MaxStrands > 0 && e.totalStrands > e.cfg.MaxStrands {
		panic(fmt.Sprintf("sim: strand budget %d exceeded (runaway program?)", e.cfg.MaxStrands))
	}
	if l := e.cfg.Listener; l != nil {
		l.StrandSpawned(s)
	}
	e.liveStrands++
	e.callAdd(s, w)
}

// finishStrand handles a worker whose strand code returned: scheduler
// done, then either fork bookkeeping or join/task-end propagation.
func (e *engine) finishStrand(w *worker) {
	s := w.cur
	s.End = w.clock
	if l := e.cfg.Listener; l != nil {
		l.StrandEnded(s)
	}
	e.callDone(s, w)
	rec := w.takeFork()
	if e.rec != nil {
		e.rec.StrandForked(s, rec.cont != nil, len(rec.children), rec.futureHandle != nil || len(rec.awaits) > 0)
	}
	w.cur = nil
	e.liveStrands--
	e.curSpawner = s
	t := s.Task
	// Decide poolability up front: after maybeFinish the task may itself be
	// recycled, so s.Task must not be consulted again. Root-task strands are
	// excluded (rootRec retains the first one; keeping the rule coarse but
	// obviously safe costs one strand per root).
	poolStrand := e.pool && t.Parent != nil
	if !rec.called {
		// Strand ended without forking: the task's strand sequence is over.
		t.FinalDone = true
		e.maybeFinish(t, w)
		if poolStrand {
			e.freeStrand(s)
		}
		return
	}
	t.Cont = rec.cont
	t.BlockPending = len(rec.children)
	t.ChildPending += len(rec.children)
	for _, cj := range rec.children {
		ct := e.newTask(t, cj)
		e.spawn(e.newStrand(ct, cj, job.TaskStart, w.clock), w)
	}
	if rec.futureHandle != nil {
		ft := e.newTask(t, rec.futureBody)
		ft.Handle = rec.futureHandle
		rec.futureHandle.Bind(ft)
		t.ChildPending++ // gates task completion, not the continuation
		e.spawn(e.newStrand(ft, rec.futureBody, job.TaskStart, w.clock), w)
	}
	for _, f := range rec.awaits {
		if f.AddWaiter(t) {
			t.BlockPending++
		}
	}
	if t.BlockPending == 0 {
		// Pure-await already satisfied (or future fork with no gated
		// children): release the continuation immediately.
		e.releaseBlock(t, w)
		e.maybeFinish(t, w)
	}
	if poolStrand {
		e.freeStrand(s)
	}
}

// releaseBlock fires when a task's current parallel block has fully joined
// (BlockPending reached zero): spawn the continuation strand, or — if none
// — the task's strand sequence is over.
func (e *engine) releaseBlock(t *job.Task, w *worker) {
	if t.Cont != nil {
		cont := t.Cont
		t.Cont = nil
		e.spawn(e.newStrand(t, cont, job.Continuation, w.clock), w)
		return
	}
	t.FinalDone = true
}

// maybeFinish completes t if its strand sequence is over and all child
// tasks (including futures) have completed, cascading upward and waking
// any futures' waiters. It is idempotent per task.
func (e *engine) maybeFinish(t *job.Task, w *worker) {
	for t != nil && t.FinalDone && t.ChildPending == 0 && !t.Ended {
		t.Ended = true
		if l := e.cfg.Listener; l != nil {
			l.TaskEnded(t, w.clock)
		}
		e.callTaskEnd(t, w)
		if e.pool {
			// A parallel-for task that split owns the ForPair holding its two
			// (now completed) children; reclaim it under the same
			// listener-safety rule as task/strand pooling.
			if pr, ok := t.Job.(job.PairRecycler); ok {
				if p := pr.TakeChildPair(); p != nil {
					e.freeForPair(p)
				}
			}
		}
		if t.Handle != nil {
			for _, waiter := range t.Handle.Complete() {
				waiter.BlockPending--
				if waiter.BlockPending == 0 {
					e.releaseBlock(waiter, w)
					e.maybeFinish(waiter, w)
				}
			}
		}
		p := t.Parent
		if p == nil {
			e.liveRoots--
			if rec, ok := e.roots[t]; ok {
				delete(e.roots, t)
				e.src.Done(rec.tag, RootStats{Enqueued: rec.enq, Start: rec.strand.Start, End: w.clock})
			}
			return
		}
		p.ChildPending--
		if t.Handle == nil {
			p.BlockPending--
			if p.BlockPending == 0 {
				e.releaseBlock(p, w)
			}
			if e.pool {
				// Ended, non-root, not future-bound, parent bookkeeping
				// done: the engine holds no more references to t. (Future
				// tasks stay out: job.Future retains its bound task so
				// Get after completion keeps working.)
				e.freeTask(t)
			}
			t = p
			continue
		}
		t = p
	}
}

// --- main loop -------------------------------------------------------------

// rootRec is the per-injected-root bookkeeping for Source.Done.
type rootRec struct {
	tag    uint64
	enq    int64
	strand *job.Strand
}

// inject spawns one injected root task on behalf of w (the earliest
// worker, taking the dispatch interrupt). The scheduler's Add cost is
// charged to w under the add bucket, exactly like a fork-spawned strand.
// An injection may instead (or additionally) carry a dynamic cache
// flush; flush-only injections touch no scheduler state.
func (e *engine) inject(inj Injection, w *worker) {
	if inj.Flush != nil {
		e.applyFlush(inj.Flush)
	}
	if inj.Job == nil {
		return
	}
	t := e.newTask(nil, inj.Job)
	e.liveRoots++
	// A root strand has no spawning strand: it enters from outside the
	// dependence DAG, so suppress the stale curSpawner.
	saved := e.curSpawner
	e.curSpawner = nil
	s := e.newStrand(t, inj.Job, job.TaskStart, w.clock)
	e.curSpawner = saved
	if e.roots == nil {
		e.roots = make(map[*job.Task]rootRec)
	}
	e.roots[t] = rootRec{tag: inj.Tag, enq: w.clock, strand: s}
	e.spawn(s, w)
}

// applyFlush invalidates the caches named by an injected flush: one cache,
// one whole level (Node < 0), or every cache level (Level < 0).
func (e *engine) applyFlush(f *fault.Flush) {
	lo, hi := f.Level, f.Level
	if f.Level < 0 {
		lo, hi = 1, e.m.CacheLevels()
	}
	for lvl := lo; lvl <= hi; lvl++ {
		if f.Node < 0 {
			for _, c := range e.h.Caches(lvl) {
				c.Invalidate()
			}
		} else {
			e.h.Caches(lvl)[f.Node].Invalidate()
		}
	}
	e.dynFlushes++
}

// fastForward advances every (idle) worker's clock to t, accounted as
// empty-queue time. Only called when no strand is live or queued, so no
// worker is mid-strand and nothing observable can happen in the gap.
func (e *engine) fastForward(t int64) {
	for _, w := range e.workers {
		if w.clock < t {
			w.timers[BucketEmpty] += t - w.clock
			w.clock = t
		}
	}
	e.heap.init(e.workers)
}

// sample fires Sampler callbacks for every period boundary up to now.
func (e *engine) sample(now int64) {
	for e.nextSample <= now {
		e.cfg.Sampler(e.nextSample)
		e.nextSample += e.cfg.SampleEvery
	}
}

// run drives the event loop: always advance the earliest worker, folding
// in the source's injection events in simulated-time order, until the
// source is exhausted and every injected root has completed.
func (e *engine) run(src Source) (res *Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("sim: %v", r)
		}
	}()

	e.src = src
	e.sampling = e.cfg.Sampler != nil && e.cfg.SampleEvery > 0
	if e.sampling {
		e.nextSample = e.cfg.SampleEvery
	}
	e.heap.init(e.workers)
	for {
		t, pending := src.Pending()
		if !pending && e.liveRoots == 0 {
			break
		}
		w := e.heap.pop()
		if e.heap.len() > 0 {
			u := e.heap.peek()
			e.nextClock, e.nextID = u.clock, u.id
		} else {
			e.nextClock = int64(1)<<62 - 1 // single worker: always next
		}
		// Step w for as long as it remains the earliest worker, re-doing
		// the loop-head checks before every step but touching the heap
		// only when another worker overtakes. drainIdle (inside step) can
		// advance other workers, making nextClock a stale lower bound on
		// the true heap minimum — stale-low only ends the inner loop (and
		// skips chunk batching) early, never oversteps w.
		for {
			if e.sampling {
				e.sample(w.clock)
			}
			if w.clock >= e.nextFault {
				e.fireFaults(w.clock, w)
			}
			if pending {
				if t > w.clock && e.liveStrands == 0 && e.liveRoots == 0 {
					// The system is fully drained and the next arrival is
					// in the future: collapse the idle gap in one step.
					e.heap.push(w)
					e.fastForward(t)
					break
				}
				if t <= w.clock {
					if inj, ok := src.Pop(); ok {
						e.inject(inj, w)
					}
					e.heap.push(w)
					break
				}
			}
			e.step(w)
			if e.err != nil {
				return nil, e.err
			}
			if e.liveStrands == 0 && e.liveRoots > 0 {
				if _, ok := src.Pending(); !ok {
					// Nothing queued, nothing running, no arrival coming,
					// yet roots remain: a task awaits a future that can
					// never complete.
					return nil, fmt.Errorf("sim: deadlock — no runnable strands but %d root task(s) have not completed (unsatisfiable future await?)", e.liveRoots)
				}
			}
			if w.clock > e.nextClock || (w.clock == e.nextClock && w.id > e.nextID) {
				e.heap.push(w)
				break
			}
			t, pending = src.Pending()
			if !pending && e.liveRoots == 0 {
				e.heap.push(w)
				break
			}
		}
	}
	return e.collect(), nil
}

// drainIdle replays the idle polls that fine-grained chunking would have
// interleaved with a batched strand. While the finished strand ran through
// virtual chunk boundaries (see wctx.pause), the other workers sat in the
// heap untouched; any of them ordering before (w.virtualPop, w.id) — the
// pop the engine would have performed for the strand's final chunk — would,
// under fine-grained execution, have polled the scheduler (and failed: this
// strand was the only live one) before the strand's fork was published.
// Replay those polls now, in exact heap order, so their clock advances, RNG
// draws and lock/charge side effects land before finishStrand publishes new
// strands. When no boundary was batched, w.virtualPop is the strand's last
// real pop and every other worker already orders at or after it, so the
// loop is a no-op.
//
//schedlint:hotpath
func (e *engine) drainIdle(w *worker) {
	for e.heap.len() > 0 {
		if p := e.heap.peek(); p.clock > w.virtualPop || (p.clock == w.virtualPop && p.id > w.id) {
			return
		}
		u := e.heap.pop()
		// Step u while it stays both below the replay limit and ahead of
		// the rest of the heap, so repeated idle polls (IdleBackoff apart)
		// cost one pop/push instead of one each.
		nc, ni := int64(1)<<62-1, 0
		if e.heap.len() > 0 {
			v := e.heap.peek()
			nc, ni = v.clock, v.id
		}
		for {
			e.step(u)
			if u.clock > w.virtualPop || (u.clock == w.virtualPop && u.id > w.id) {
				break
			}
			if u.clock > nc || (u.clock == nc && u.id > ni) {
				break
			}
		}
		e.heap.push(u)
	}
}

// step advances one worker by one event: acquire a strand if idle, then
// run one chunk of it.
//
//schedlint:hotpath
func (e *engine) step(w *worker) {
	w.virtualPop = w.clock
	if w.cur == nil {
		if f := e.flt; f != nil && f.offline[w.id] {
			// Offline core: no scheduler polls until its CoreUp event; the
			// dead time accrues as empty-queue overhead. A core that was
			// mid-strand at its CoreDown drains that strand first (w.cur
			// non-nil skips this branch) — execution state lives on the
			// worker goroutine, so mid-strand migration is not modelled.
			w.clock += e.cost.IdleBackoff
			w.timers[BucketEmpty] += e.cost.IdleBackoff
			f.offlineCycles += e.cost.IdleBackoff
			return
		}
		s := e.callGet(w)
		if s == nil {
			w.clock += e.cost.IdleBackoff
			w.timers[BucketEmpty] += e.cost.IdleBackoff
			return
		}
		s.Start = w.clock
		s.Proc = w.id
		if l := e.cfg.Listener; l != nil {
			l.StrandStarted(s)
		}
		w.cur = s
		w.begin(e)
		e.beginInline(w, s.Job)
	}
	if w.script != nil {
		if !e.runInline(w) {
			return // real chunk boundary; resumes when earliest again
		}
		if ss, ok := w.sjob.(job.StreamScripted); ok {
			// The script bytes were leased from a bounded decode window
			// (streamed trace); hand them back now that the strand is done.
			ss.ReleaseScript(w.script)
		}
		w.script, w.sjob = nil, nil
		e.drainIdle(w)
		e.finishStrand(w)
		return
	}
	msg := w.runChunk()
	switch msg.kind {
	case yieldChunk:
		// Worker paused mid-strand; nothing to do, it will be resumed
		// when it is again the earliest worker.
	case yieldDone:
		e.drainIdle(w)
		e.finishStrand(w)
	case yieldPanic:
		//schedlint:ignore hotalloc terminal error path, runs at most once per simulation
		e.err = fmt.Errorf("sim: strand panicked on worker %d: %v", w.id, msg.panicVal)
	}
}

// collect builds the Result after the root task has ended.
func (e *engine) collect() *Result {
	wall := int64(0)
	for _, w := range e.workers {
		if w.clock > wall {
			wall = w.clock
		}
	}
	// Workers that went idle before the end spin in get until the
	// program completes; account that tail as empty-queue time.
	for _, w := range e.workers {
		w.timers[BucketEmpty] += wall - w.clock
	}
	r := &Result{
		Machine:      e.m,
		Scheduler:    e.sch.Name(),
		WallCycles:   wall,
		Workers:      make([]WorkerTimes, len(e.workers)),
		Tasks:        e.nextTaskID,
		Strands:      e.nextStrandID,
		DRAMAccesses: e.h.DRAMAccesses,
		StallCycles:  e.h.StallCycles,
		Writebacks:   e.h.Writebacks,
		RemoteHits:   e.h.RemoteHits,
		Hier:         e.h,
	}
	for i, w := range e.workers {
		r.Workers[i] = WorkerTimes{Buckets: w.timers}
	}
	r.MissesPerLevel = make([]int64, e.m.NumLevels())
	for lvl := 1; lvl < e.m.NumLevels(); lvl++ {
		r.MissesPerLevel[lvl] = e.h.MissesAt(lvl)
	}
	if f := e.flt; f != nil {
		r.Migrations = f.migrations
		r.FaultEvents = f.eventsFired
		r.OfflineCycles = f.offlineCycles
	}
	r.FaultEvents += e.dynFlushes
	return r
}
