package sim

import (
	"strings"
	"testing"

	"repro/internal/job"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/sched"
)

// runMap executes a parallel map over an n-element array on the given
// machine and scheduler and returns the result plus the array.
func runMap(t *testing.T, m *machine.Desc, s sched.Scheduler, n int, seed uint64) (*Result, mem.F64) {
	t.Helper()
	sp := mem.NewSpace(m.Links, m.Links)
	arr := sp.NewF64("xs", n)
	size := func(lo, hi int) int64 { return int64(hi-lo) * 8 }
	root := job.For(0, n, 64, size, func(ctx job.Ctx, i int) {
		arr.Write(ctx, i, float64(i)*2)
	})
	res, err := Run(Config{Machine: m, Space: sp, Scheduler: s, Seed: seed}, root)
	if err != nil {
		t.Fatal(err)
	}
	return res, arr
}

func allSchedulers() []string { return []string{"ws", "pws", "cilk", "sb", "sbd", "pdf"} }

func TestParallelForCorrectUnderAllSchedulers(t *testing.T) {
	m := machine.TwoSocket(4, 1<<16, 1<<12)
	for _, name := range allSchedulers() {
		res, arr := runMap(t, m, sched.New(name), 4096, 7)
		for i, v := range arr.Data {
			if v != float64(i)*2 {
				t.Fatalf("%s: element %d = %v, want %v", name, i, v, float64(i)*2)
			}
		}
		if res.Strands == 0 || res.Tasks == 0 {
			t.Errorf("%s: no work recorded", name)
		}
		if res.WallCycles <= 0 {
			t.Errorf("%s: non-positive wall time", name)
		}
	}
}

func TestDeterminism(t *testing.T) {
	m := machine.TwoSocket(4, 1<<16, 1<<12)
	for _, name := range allSchedulers() {
		a, _ := runMap(t, m, sched.New(name), 2048, 42)
		b, _ := runMap(t, m, sched.New(name), 2048, 42)
		if a.WallCycles != b.WallCycles {
			t.Errorf("%s: wall %d vs %d for identical seeds", name, a.WallCycles, b.WallCycles)
		}
		if a.L3Misses() != b.L3Misses() {
			t.Errorf("%s: misses %d vs %d for identical seeds", name, a.L3Misses(), b.L3Misses())
		}
		for i := range a.Workers {
			if a.Workers[i] != b.Workers[i] {
				t.Errorf("%s: worker %d timers differ across identical runs", name, i)
			}
		}
	}
}

func TestSpeedupWithMoreCores(t *testing.T) {
	// The same (compute-heavy) program on 1 vs 8 cores must get
	// substantially faster: the scheduler actually parallelizes.
	n := 2048
	prog := func() (job.Job, *mem.Space, *machine.Desc, int) { return nil, nil, nil, 0 }
	_ = prog
	run := func(cores int) int64 {
		m := machine.Flat(cores, 1<<16)
		sp := mem.NewSpace(m.Links, m.Links)
		arr := sp.NewF64("xs", n)
		root := job.For(0, n, 32, func(lo, hi int) int64 { return int64(hi-lo) * 8 }, func(ctx job.Ctx, i int) {
			ctx.Work(200)
			arr.Write(ctx, i, 1)
		})
		res, err := Run(Config{Machine: m, Space: sp, Scheduler: sched.NewWS(), Seed: 1}, root)
		if err != nil {
			t.Fatal(err)
		}
		return res.WallCycles
	}
	t1, t8 := run(1), run(8)
	if sp := float64(t1) / float64(t8); sp < 4 {
		t.Errorf("8-core speedup = %.2f, want >= 4 (t1=%d, t8=%d)", sp, t1, t8)
	}
}

func TestForkJoinContinuationRuns(t *testing.T) {
	// A task with two strands: fork two children, then a continuation that
	// observes both children's effects.
	m := machine.Flat(2, 1<<14)
	sp := mem.NewSpace(1, 1)
	var log []string
	child := func(name string) job.Job {
		return job.FuncJob(func(ctx job.Ctx) {
			ctx.Work(10)
			log = append(log, name)
		})
	}
	root := job.FuncJob(func(ctx job.Ctx) {
		ctx.Fork(job.FuncJob(func(job.Ctx) { log = append(log, "cont") }),
			child("a"), child("b"))
	})
	if _, err := Run(Config{Machine: m, Space: sp, Scheduler: sched.NewWS(), Seed: 3}, root); err != nil {
		t.Fatal(err)
	}
	if len(log) != 3 || log[2] != "cont" {
		t.Fatalf("log = %v, want children then cont", log)
	}
	seen := strings.Join(log[:2], "")
	if seen != "ab" && seen != "ba" {
		t.Fatalf("children = %v", log[:2])
	}
}

func TestNestedForkJoin(t *testing.T) {
	// Fibonacci-style nested fork/join with result combination through
	// continuations exercises deep task trees and join cascades.
	m := machine.TwoSocket(2, 1<<16, 1<<12)
	sp := mem.NewSpace(m.Links, m.Links)
	results := make(map[int]int) // filled single-threaded via sim determinism
	var fib func(n int, out *int) job.Job
	fib = func(n int, out *int) job.Job {
		return job.FuncJob(func(ctx job.Ctx) {
			ctx.Work(5)
			if n < 2 {
				*out = n
				return
			}
			a, b := new(int), new(int)
			ctx.Fork(job.FuncJob(func(job.Ctx) { *out = *a + *b }),
				fib(n-1, a), fib(n-2, b))
		})
	}
	var got int
	if _, err := Run(Config{Machine: m, Space: sp, Scheduler: sched.NewWS(), Seed: 5}, fib(12, &got)); err != nil {
		t.Fatal(err)
	}
	if got != 144 {
		t.Fatalf("fib(12) = %d, want 144", got)
	}
	_ = results
}

func TestTimerBucketsAccounted(t *testing.T) {
	m := machine.Flat(4, 1<<14)
	sp := mem.NewSpace(1, 1)
	arr := sp.NewF64("xs", 1024)
	root := job.For(0, 1024, 64, func(lo, hi int) int64 { return int64(hi-lo) * 8 }, func(ctx job.Ctx, i int) {
		arr.Write(ctx, i, 1)
	})
	res, err := Run(Config{Machine: m, Space: sp, Scheduler: sched.NewWS(), Seed: 1}, root)
	if err != nil {
		t.Fatal(err)
	}
	if res.ActiveAvg() <= 0 {
		t.Error("no active time recorded")
	}
	if res.BucketAvg(BucketAdd) <= 0 || res.BucketAvg(BucketGet) <= 0 || res.BucketAvg(BucketDone) <= 0 {
		t.Error("scheduler call-back overheads not recorded")
	}
	// Every worker's buckets must sum to (at most) the wall time, and the
	// padded empty bucket makes them sum to exactly the wall time.
	for i, w := range res.Workers {
		var sum int64
		for _, b := range w.Buckets {
			sum += b
		}
		if sum != res.WallCycles {
			t.Errorf("worker %d bucket sum %d != wall %d", i, sum, res.WallCycles)
		}
	}
}

func TestCacheMissesRecorded(t *testing.T) {
	m := machine.Flat(2, 1<<12) // 4KB cache, array is 32KB
	sp := mem.NewSpace(1, 1)
	arr := sp.NewF64("xs", 4096)
	root := job.For(0, 4096, 256, func(lo, hi int) int64 { return int64(hi-lo) * 8 }, func(ctx job.Ctx, i int) {
		arr.Write(ctx, i, 1)
	})
	res, err := Run(Config{Machine: m, Space: sp, Scheduler: sched.NewWS(), Seed: 1}, root)
	if err != nil {
		t.Fatal(err)
	}
	// A streaming write of 32KB with 64B lines must miss ~512 times.
	if got := res.L3Misses(); got < 512 || got > 560 {
		t.Errorf("misses = %d, want ~512", got)
	}
	if res.DRAMAccesses != res.L3Misses() {
		t.Errorf("DRAM accesses %d != outermost misses %d", res.DRAMAccesses, res.L3Misses())
	}
}

func TestStrandPanicPropagates(t *testing.T) {
	m := machine.Flat(2, 1<<12)
	sp := mem.NewSpace(1, 1)
	root := job.FuncJob(func(ctx job.Ctx) { panic("kernel bug") })
	if _, err := Run(Config{Machine: m, Space: sp, Scheduler: sched.NewWS(), Seed: 1}, root); err == nil {
		t.Fatal("strand panic did not surface as an error")
	} else if !strings.Contains(err.Error(), "kernel bug") {
		t.Errorf("error %q does not mention the panic", err)
	}
}

func TestDoubleForkRejected(t *testing.T) {
	m := machine.Flat(1, 1<<12)
	sp := mem.NewSpace(1, 1)
	child := job.FuncJob(func(job.Ctx) {})
	root := job.FuncJob(func(ctx job.Ctx) {
		ctx.Fork(nil, child)
		ctx.Fork(nil, child)
	})
	if _, err := Run(Config{Machine: m, Space: sp, Scheduler: sched.NewWS(), Seed: 1}, root); err == nil {
		t.Fatal("double fork not rejected")
	}
}

func TestEmptyForkRejected(t *testing.T) {
	m := machine.Flat(1, 1<<12)
	sp := mem.NewSpace(1, 1)
	root := job.FuncJob(func(ctx job.Ctx) { ctx.Fork(nil) })
	if _, err := Run(Config{Machine: m, Space: sp, Scheduler: sched.NewWS(), Seed: 1}, root); err == nil {
		t.Fatal("empty fork not rejected")
	}
}

func TestMaxStrandsBudget(t *testing.T) {
	m := machine.Flat(1, 1<<12)
	sp := mem.NewSpace(1, 1)
	var forever func() job.Job
	forever = func() job.Job {
		return job.FuncJob(func(ctx job.Ctx) { ctx.Fork(nil, forever()) })
	}
	_, err := Run(Config{Machine: m, Space: sp, Scheduler: sched.NewWS(), Seed: 1, MaxStrands: 1000}, forever())
	if err == nil {
		t.Fatal("runaway program not aborted")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Run(Config{}, job.FuncJob(func(job.Ctx) {})); err == nil {
		t.Fatal("empty config accepted")
	}
}

func TestResultString(t *testing.T) {
	m := machine.Flat(2, 1<<12)
	res, _ := runMap(t, m, sched.NewWS(), 512, 1)
	s := res.String()
	for _, sub := range []string{"WS", "tasks=", "active", "dram"} {
		if !strings.Contains(s, sub) {
			t.Errorf("Result.String() missing %q:\n%s", sub, s)
		}
	}
}

func TestWorkOnlyProgram(t *testing.T) {
	// Pure compute (no memory accesses) still terminates and charges time.
	m := machine.Flat(2, 1<<12)
	sp := mem.NewSpace(1, 1)
	root := job.FuncJob(func(ctx job.Ctx) { ctx.Work(100000) })
	res, err := Run(Config{Machine: m, Space: sp, Scheduler: sched.NewWS(), Seed: 1}, root)
	if err != nil {
		t.Fatal(err)
	}
	if res.ActiveAvg()*float64(len(res.Workers)) < 100000 {
		t.Errorf("active time lost: avg %.0f on %d cores", res.ActiveAvg(), len(res.Workers))
	}
}

func TestListenerSeesLifecycle(t *testing.T) {
	m := machine.Flat(2, 1<<12)
	sp := mem.NewSpace(1, 1)
	l := &countListener{}
	root := job.FuncJob(func(ctx job.Ctx) {
		ctx.Fork(job.FuncJob(func(job.Ctx) {}), job.FuncJob(func(job.Ctx) {}))
	})
	res, err := Run(Config{Machine: m, Space: sp, Scheduler: sched.NewWS(), Seed: 1, Listener: l}, root)
	if err != nil {
		t.Fatal(err)
	}
	if l.spawned != int(res.Strands) {
		t.Errorf("listener saw %d spawns, result says %d strands", l.spawned, res.Strands)
	}
	if l.started != l.spawned || l.ended != l.spawned {
		t.Errorf("lifecycle mismatch: spawned=%d started=%d ended=%d", l.spawned, l.started, l.ended)
	}
	if l.tasksEnded != int(res.Tasks) {
		t.Errorf("listener saw %d task ends, result says %d tasks", l.tasksEnded, res.Tasks)
	}
}

type countListener struct {
	spawned, started, ended, tasksEnded int
}

func (c *countListener) StrandSpawned(*job.Strand)  { c.spawned++ }
func (c *countListener) StrandStarted(*job.Strand)  { c.started++ }
func (c *countListener) StrandEnded(*job.Strand)    { c.ended++ }
func (c *countListener) TaskEnded(*job.Task, int64) { c.tasksEnded++ }

func TestPartialCostModelClamped(t *testing.T) {
	// A cost model with zero IdleBackoff must not livelock the engine.
	m := machine.Flat(4, 1<<12)
	sp := mem.NewSpace(1, 1)
	cost := sched.DefaultCosts()
	cost.IdleBackoff = 0
	cost.ChunkCycles = 0
	root := job.For(0, 256, 16, func(lo, hi int) int64 { return int64(hi-lo) * 8 },
		func(ctx job.Ctx, i int) { ctx.Work(10) })
	res, err := Run(Config{Machine: m, Space: sp, Scheduler: sched.NewWS(), Cost: cost, Seed: 1}, root)
	if err != nil {
		t.Fatal(err)
	}
	if res.WallCycles <= 0 {
		t.Error("no progress")
	}
}

func TestNonInclusiveMachineEndToEnd(t *testing.T) {
	m := machine.TwoSocket(4, 1<<16, 1<<12)
	m.NonInclusive = true
	for _, sn := range []string{"ws", "sb"} {
		res, arr := runMap(t, m, sched.New(sn), 4096, 13)
		for i, v := range arr.Data {
			if v != float64(i)*2 {
				t.Fatalf("%s: wrong output at %d", sn, i)
			}
		}
		if res.L3Misses() <= 0 {
			t.Errorf("%s: no misses on exclusive hierarchy", sn)
		}
	}
}
