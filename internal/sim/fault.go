package sim

import (
	"repro/internal/fault"
	"repro/internal/sched"
)

// faultState is the engine-side machinery of fault injection: the
// compiled event list plus the current perturbation state of the machine.
// It exists only when Config.Faults is a non-empty plan, so unfaulted
// runs pay a single nil check on each hot path and are bit-identical to
// builds without fault injection at all.
type faultState struct {
	events []fault.Event
	idx    int
	// mult[core] is the active straggler dilation in percent (100 =
	// nominal); offline[core] marks cores taken down. Both are indexed by
	// logical core id.
	mult    []int64
	offline []bool
	// baseLineService restores nominal DRAM bandwidth between phases.
	baseLineService int64
	// stragglers disables the inline script interpreter, whose batched
	// accounting cannot apply per-op dilation.
	stragglers bool

	// Diagnostics surfaced in Result (excluded from fingerprints).
	migrations    int64
	eventsFired   int
	offlineCycles int64
}

// newFaultState compiles cfg.Faults; it returns nil for an absent or
// empty plan. Compile errors panic — Run/RunStream validate the plan
// first and return them as proper errors.
func newFaultState(cfg *Config) *faultState {
	if cfg.Faults.Empty() {
		return nil
	}
	evs, err := cfg.Faults.Compile(cfg.Machine)
	if err != nil {
		panic(errMachine(err).Error())
	}
	n := cfg.Machine.NumCores()
	f := &faultState{
		events:          evs,
		mult:            make([]int64, n),
		offline:         make([]bool, n),
		baseLineService: cfg.Machine.LineService,
		stragglers:      cfg.Faults.HasStragglers(),
	}
	for i := range f.mult {
		f.mult[i] = 100
	}
	return f
}

// fireFaults applies every event due at or before now, then re-arms
// e.nextFault. Called from the event loop with w the just-popped earliest
// worker, so events apply at the first engine interposition at or after
// their nominal time — scheduler migration costs (CoreDown/CoreUp
// callbacks) are charged to w, the core that observed the fault, which is
// safely out of the worker heap.
func (e *engine) fireFaults(now int64, w *worker) {
	f := e.flt
	for f.idx < len(f.events) && f.events[f.idx].Time <= now {
		ev := f.events[f.idx]
		f.idx++
		f.eventsFired++
		switch ev.Kind {
		case fault.KindStragglerOn:
			f.mult[ev.Core] = ev.Arg
		case fault.KindStragglerOff:
			f.mult[ev.Core] = 100
		case fault.KindCoreDown:
			if f.offline[ev.Core] {
				break
			}
			f.offline[ev.Core] = true
			if fa, ok := e.sch.(sched.FaultAware); ok {
				e.curBucket = BucketDone
				f.migrations += int64(fa.CoreDown(ev.Core, w.id))
				e.curBucket = BucketActive
			}
		case fault.KindCoreUp:
			if !f.offline[ev.Core] {
				break
			}
			f.offline[ev.Core] = false
			if fa, ok := e.sch.(sched.FaultAware); ok {
				e.curBucket = BucketDone
				fa.CoreUp(ev.Core, w.id)
				e.curBucket = BucketActive
			}
		case fault.KindBandwidth:
			// pct% of nominal bandwidth = a service slot 100/pct as long.
			e.h.SetLineService(f.baseLineService * 100 / ev.Arg)
		case fault.KindFlush:
			if ev.Node < 0 {
				for _, c := range e.h.Caches(ev.Level) {
					c.Invalidate()
				}
			} else {
				e.h.Caches(ev.Level)[ev.Node].Invalidate()
			}
		}
	}
	if f.idx < len(f.events) {
		e.nextFault = f.events[f.idx].Time
	} else {
		e.nextFault = int64(1)<<62 - 1
	}
}
