package sim

import (
	"strings"
	"testing"

	"repro/internal/job"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/sched"
)

// TestFuturePipeline builds a producer/consumer DAG that plain fork-join
// cannot express: a future produces a value while the main task continues
// with other work, and a later stage awaits it.
func TestFuturePipeline(t *testing.T) {
	for _, sn := range []string{"ws", "sb", "pdf"} {
		m := machine.TwoSocket(2, 1<<16, 1<<12)
		sp := mem.NewSpace(m.Links, m.Links)
		var produced, consumed, overlapped bool
		f := job.NewFuture()
		root := job.FuncJob(func(ctx job.Ctx) {
			ctx.ForkFuture(job.FuncJob(func(c2 job.Ctx) {
				// Continuation runs without waiting for the future.
				overlapped = !f.Done() || produced
				c2.ForkAwait(job.FuncJob(func(job.Ctx) {
					consumed = produced // must observe the producer's effect
				}), []*job.Future{f})
			}), f, job.FuncJob(func(c3 job.Ctx) {
				c3.Work(5000)
				produced = true
			}))
		})
		res, err := Run(Config{Machine: m, Space: sp, Scheduler: sched.New(sn), Seed: 3}, root)
		if err != nil {
			t.Fatalf("%s: %v", sn, err)
		}
		if !produced || !consumed {
			t.Errorf("%s: produced=%v consumed=%v", sn, produced, consumed)
		}
		if !overlapped {
			t.Errorf("%s: continuation incorrectly waited for the future", sn)
		}
		if !f.Done() {
			t.Errorf("%s: future not resolved at completion", sn)
		}
		if res.Tasks < 2 {
			t.Errorf("%s: future task not counted", sn)
		}
	}
}

// TestAwaitAlreadyDoneFuture awaits a future that completed long before.
func TestAwaitAlreadyDoneFuture(t *testing.T) {
	m := machine.Flat(2, 1<<14)
	sp := mem.NewSpace(1, 1)
	f := job.NewFuture()
	ran := false
	root := job.FuncJob(func(ctx job.Ctx) {
		ctx.ForkFuture(job.FuncJob(func(c2 job.Ctx) {
			// Burn enough time that the future surely finished.
			c2.Work(100000)
			c2.ForkAwait(job.FuncJob(func(job.Ctx) { ran = true }), []*job.Future{f})
		}), f, job.FuncJob(func(job.Ctx) {}))
	})
	if _, err := Run(Config{Machine: m, Space: sp, Scheduler: sched.NewWS(), Seed: 1}, root); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("await on completed future never released")
	}
}

// TestMultipleAwaiters gates several tasks on one future.
func TestMultipleAwaiters(t *testing.T) {
	m := machine.Flat(4, 1<<14)
	sp := mem.NewSpace(1, 1)
	f := job.NewFuture()
	hits := 0
	waiterBody := func(c job.Ctx) {
		c.ForkAwait(job.FuncJob(func(job.Ctx) { hits++ }), []*job.Future{f})
	}
	root := job.FuncJob(func(ctx job.Ctx) {
		ctx.ForkFuture(job.FuncJob(func(c2 job.Ctx) {
			c2.Fork(nil,
				job.FuncJob(waiterBody), job.FuncJob(waiterBody), job.FuncJob(waiterBody))
		}), f, job.FuncJob(func(c job.Ctx) { c.Work(20000) }))
	})
	if _, err := Run(Config{Machine: m, Space: sp, Scheduler: sched.NewWS(), Seed: 2}, root); err != nil {
		t.Fatal(err)
	}
	if hits != 3 {
		t.Fatalf("hits = %d, want 3", hits)
	}
}

// TestAwaitCombinedWithChildren gates a continuation on children AND a
// future together.
func TestAwaitCombinedWithChildren(t *testing.T) {
	m := machine.Flat(4, 1<<14)
	sp := mem.NewSpace(1, 1)
	f := job.NewFuture()
	var childDone, futDone, contRan bool
	root := job.FuncJob(func(ctx job.Ctx) {
		ctx.ForkFuture(job.FuncJob(func(c2 job.Ctx) {
			c2.ForkAwait(job.FuncJob(func(job.Ctx) {
				contRan = childDone && futDone
			}), []*job.Future{f},
				job.FuncJob(func(c job.Ctx) { c.Work(100); childDone = true }))
		}), f, job.FuncJob(func(c job.Ctx) { c.Work(30000); futDone = true }))
	})
	if _, err := Run(Config{Machine: m, Space: sp, Scheduler: sched.NewWS(), Seed: 4}, root); err != nil {
		t.Fatal(err)
	}
	if !contRan {
		t.Fatal("continuation ran before both dependencies resolved")
	}
}

// TestDeadlockDetected: awaiting a future that is never spawned must abort
// with a diagnostic instead of hanging.
func TestDeadlockDetected(t *testing.T) {
	m := machine.Flat(2, 1<<14)
	sp := mem.NewSpace(1, 1)
	f := job.NewFuture() // never spawned
	root := job.FuncJob(func(ctx job.Ctx) {
		ctx.ForkAwait(job.FuncJob(func(job.Ctx) {}), []*job.Future{f})
	})
	_, err := Run(Config{Machine: m, Space: sp, Scheduler: sched.NewWS(), Seed: 1}, root)
	if err == nil {
		t.Fatal("unsatisfiable await did not error")
	}
	if !strings.Contains(err.Error(), "deadlock") {
		t.Errorf("unexpected error: %v", err)
	}
}

// TestFutureTaskGatesParentCompletion: a task must not complete while its
// future child runs, even with a nil continuation.
func TestFutureTaskGatesParentCompletion(t *testing.T) {
	m := machine.Flat(2, 1<<14)
	sp := mem.NewSpace(1, 1)
	f := job.NewFuture()
	order := []string{}
	root := job.FuncJob(func(ctx job.Ctx) {
		ctx.Fork(job.FuncJob(func(c job.Ctx) { order = append(order, "root-cont") }),
			job.FuncJob(func(c2 job.Ctx) {
				c2.ForkFuture(nil, f, job.FuncJob(func(c3 job.Ctx) {
					c3.Work(50000)
					order = append(order, "future")
				}))
			}))
	})
	if _, err := Run(Config{Machine: m, Space: sp, Scheduler: sched.NewWS(), Seed: 9}, root); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "future" || order[1] != "root-cont" {
		t.Fatalf("order = %v: the spawning task's join did not wait for its future child", order)
	}
}
