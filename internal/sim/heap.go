package sim

// workerHeap orders workers by (clock, id) so the engine always advances
// the earliest worker, with a deterministic tie-break. A hand-rolled binary
// heap avoids container/heap's interface allocations in the hottest loop of
// the simulator, and the ordering key is stored inline in the heap array:
// sift comparisons then touch a small contiguous slice instead of chasing
// 64 *worker pointers through host cache. A worker's clock only changes
// while it is out of the heap, so the key copied at push time stays valid.
type heapItem struct {
	clock int64
	id    int
	w     *worker
}

type workerHeap struct {
	its []heapItem
}

func (h *workerHeap) init(ws []*worker) {
	h.its = h.its[:0]
	for _, w := range ws {
		h.its = append(h.its, heapItem{clock: w.clock, id: w.id, w: w})
	}
	for i := len(h.its)/2 - 1; i >= 0; i-- {
		h.down(i)
	}
}

func (h *workerHeap) less(i, j int) bool {
	a, b := &h.its[i], &h.its[j]
	if a.clock != b.clock {
		return a.clock < b.clock
	}
	return a.id < b.id
}

func (h *workerHeap) swap(i, j int) { h.its[i], h.its[j] = h.its[j], h.its[i] }

func (h *workerHeap) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(i, p) {
			break
		}
		h.swap(i, p)
		i = p
	}
}

func (h *workerHeap) down(i int) {
	n := len(h.its)
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && h.less(l, m) {
			m = l
		}
		if r < n && h.less(r, m) {
			m = r
		}
		if m == i {
			return
		}
		h.swap(i, m)
		i = m
	}
}

// peek returns the (clock, id) key of the earliest worker without removing
// it.
func (h *workerHeap) peek() heapItem { return h.its[0] }

// pop removes and returns the earliest worker.
func (h *workerHeap) pop() *worker {
	w := h.its[0].w
	last := len(h.its) - 1
	h.its[0] = h.its[last]
	h.its = h.its[:last]
	if last > 0 {
		h.down(0)
	}
	return w
}

// push (re-)inserts a worker, keying it by its current clock.
func (h *workerHeap) push(w *worker) {
	h.its = append(h.its, heapItem{clock: w.clock, id: w.id, w: w})
	h.up(len(h.its) - 1)
}

func (h *workerHeap) len() int { return len(h.its) }
