package sim

// workerHeap orders workers by (clock, id) so the engine always advances
// the earliest worker, with a deterministic tie-break. A hand-rolled binary
// heap avoids container/heap's interface allocations in the hottest loop of
// the simulator.
type workerHeap struct {
	ws []*worker
}

func (h *workerHeap) init(ws []*worker) {
	h.ws = append(h.ws[:0], ws...)
	for i := len(h.ws)/2 - 1; i >= 0; i-- {
		h.down(i)
	}
}

func (h *workerHeap) less(i, j int) bool {
	a, b := h.ws[i], h.ws[j]
	if a.clock != b.clock {
		return a.clock < b.clock
	}
	return a.id < b.id
}

func (h *workerHeap) swap(i, j int) { h.ws[i], h.ws[j] = h.ws[j], h.ws[i] }

func (h *workerHeap) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(i, p) {
			break
		}
		h.swap(i, p)
		i = p
	}
}

func (h *workerHeap) down(i int) {
	n := len(h.ws)
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && h.less(l, m) {
			m = l
		}
		if r < n && h.less(r, m) {
			m = r
		}
		if m == i {
			return
		}
		h.swap(i, m)
		i = m
	}
}

// peek returns the earliest worker without removing it.
func (h *workerHeap) peek() *worker { return h.ws[0] }

// pop removes and returns the earliest worker.
func (h *workerHeap) pop() *worker {
	w := h.ws[0]
	last := len(h.ws) - 1
	h.ws[0] = h.ws[last]
	h.ws = h.ws[:last]
	if last > 0 {
		h.down(0)
	}
	return w
}

// push re-inserts a worker after its clock advanced.
func (h *workerHeap) push(w *worker) {
	h.ws = append(h.ws, w)
	h.up(len(h.ws) - 1)
}

func (h *workerHeap) len() int { return len(h.ws) }
