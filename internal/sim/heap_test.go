package sim

import (
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func TestWorkerHeapOrdering(t *testing.T) {
	f := func(seed uint64, n8 uint8) bool {
		n := int(n8%32) + 1
		rng := xrand.New(seed)
		ws := make([]*worker, n)
		for i := range ws {
			ws[i] = &worker{id: i, clock: int64(rng.Intn(1000))}
		}
		var h workerHeap
		h.init(ws)
		// Simulate engine churn: pop earliest, advance, push back.
		prevClock := int64(-1)
		for step := 0; step < 200; step++ {
			w := h.pop()
			// Every other live worker must not be earlier.
			for _, o := range h.its {
				if o.clock < w.clock || (o.clock == w.clock && o.id < w.id) {
					return false
				}
			}
			if w.clock < prevClock {
				// Clocks only move forward, and we advance the popped
				// worker, so pops must be monotone.
				return false
			}
			prevClock = w.clock
			w.clock += int64(rng.Intn(50))
			h.push(w)
		}
		return h.len() == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestWorkerHeapTieBreakById(t *testing.T) {
	ws := []*worker{{id: 2, clock: 5}, {id: 0, clock: 5}, {id: 1, clock: 5}}
	var h workerHeap
	h.init(ws)
	for want := 0; want < 3; want++ {
		if got := h.pop(); got.id != want {
			t.Fatalf("pop %d: got id %d", want, got.id)
		}
	}
}
