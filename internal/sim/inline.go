package sim

// Inline execution of scripted strands: when the strand's Job is a
// job.Scripted (a replayed trace node) and no trace recorder is armed,
// the engine interprets the op bytecode directly on its own goroutine
// instead of resuming the worker goroutine to call Run. The simulated
// state transitions are identical to the goroutine path — runs of work
// ops and innermost-cache hits execute inside cachesim.RunScript (which
// replicates the Access fast path state change per op), memo-missing
// accesses take the ordinary Hierarchy.Access walk, and the chunk-budget
// decision of wctx.pause is replicated term for term — so results stay
// bit-identical; only the host-side channel handoff, goroutine switches
// and per-op call overhead disappear.

import (
	"repro/internal/job"
	"repro/internal/mem"
	"repro/internal/opcode"
)

// beginInline arms inline execution for the strand just acquired by w if
// its job is scripted and no recorder needs the goroutine path. (A
// recording replay must go through wctx so StrandAccess/StrandWork fire;
// correctness there matters, not speed.)
func (e *engine) beginInline(w *worker, j job.Job) {
	if e.rec != nil {
		return
	}
	if f := e.flt; f != nil && f.stragglers {
		// Straggler dilation is applied per charge in wctx.spend; the
		// inline interpreter batches charges inside cachesim.RunScript and
		// cannot reproduce the same integer roundings, so scripted strands
		// take the goroutine path for the whole run. Correctness is
		// unaffected — only the replay speedup is given up.
		return
	}
	if sj, ok := j.(job.Scripted); ok {
		w.sjob = sj
		w.script, w.sip, w.send = sj.Script()
		w.sprev = 0
	}
}

// runInline advances w's scripted strand until its next real chunk yield
// (returns false; resume state saved in w) or until the strand's ops are
// exhausted (returns true after staging the terminal fork, so the caller
// finishes the strand exactly like a yieldDone).
//
// Equivalence with the goroutine path, op by op:
//
//   - runs of work ops and memo-hitting accesses advance inside
//     cachesim.RunScript, which applies the same state transition as
//     wctx.Work / wctx.Access on an innermost hit and stops exactly on
//     the op where cumulative cost crosses the chunk budget — the same
//     op on which wctx.spend would have observed chunkLeft <= 0;
//   - a memo-missing access takes h.Access, like the general path of
//     wctx.Access;
//   - the chunk decision replicates wctx.pause: a virtual (fast-path)
//     boundary records the pop and continues with a fresh budget; a real
//     boundary saves the decode position where pause would have parked
//     the goroutine, and the reset of chunkLeft that pause performs after
//     resume happens at re-entry.
//
// The worker's clock, active-bucket time and chunk budget accumulate in
// locals and are flushed at every exit; nothing reads them in between
// (h.Access takes the clock as an argument, and nothing re-enters the
// engine while the loop runs).
//
//schedlint:hotpath
func (e *engine) runInline(w *worker) bool {
	ops, ip, end := w.script, w.sip, w.send
	prev := w.sprev
	clock := w.clock
	chunkLeft := w.chunkLeft
	var active int64
	if chunkLeft <= 0 {
		// Re-entry after a real chunk yield: wctx.pause resets the budget
		// after its resume; the inline path resets it here.
		chunkLeft = e.cost.ChunkCycles
	}
	h := e.h
	leaf := w.leaf
	for ip < end {
		nip, nprev, spent, miss := h.RunScript(leaf, ops, ip, end, prev, chunkLeft)
		ip, prev = nip, nprev
		clock += spent
		active += spent
		chunkLeft -= spent
		if chunkLeft <= 0 {
			if !e.sampling && clock < e.nextFault &&
				(e.liveStrands == 1 ||
					clock < e.nextClock || (clock == e.nextClock && w.id < e.nextID)) {
				if t, pending := e.src.Pending(); !pending || t > clock {
					w.virtualPop = clock
					chunkLeft = e.cost.ChunkCycles
					continue
				}
			}
			w.sip, w.sprev = ip, prev
			w.clock = clock
			w.timers[BucketActive] += active
			w.chunkLeft = chunkLeft
			return false
		}
		if !miss {
			continue // stream ended; the loop condition exits
		}
		// Memo-missing access: decode it and take the general walk.
		var v uint64
		var vshift uint
		for {
			b := ops[ip]
			ip++
			v |= uint64(b&0x7f) << vshift
			if b < 0x80 {
				break
			}
			vshift += 7
		}
		u := v >> opcode.TagBits
		prev += int64(u>>1) ^ -int64(u&1)
		cost, _ := h.Access(leaf, clock, mem.Addr(prev), v&opcode.TagMask == opcode.Write)
		clock += cost
		active += cost
		chunkLeft -= cost
		if chunkLeft <= 0 {
			if !e.sampling && clock < e.nextFault &&
				(e.liveStrands == 1 ||
					clock < e.nextClock || (clock == e.nextClock && w.id < e.nextID)) {
				if t, pending := e.src.Pending(); !pending || t > clock {
					w.virtualPop = clock
					chunkLeft = e.cost.ChunkCycles
					continue
				}
			}
			w.sip, w.sprev = ip, prev
			w.clock = clock
			w.timers[BucketActive] += active
			w.chunkLeft = chunkLeft
			return false
		}
	}
	w.clock = clock
	w.timers[BucketActive] += active
	w.chunkLeft = chunkLeft
	// Strand complete: stage the terminal fork the goroutine path would
	// have recorded through wctx.Fork, then let the caller finish it. A
	// cont with no children (a partitioned spine strand whose child
	// subtrees were split off) still forks: the empty parallel block joins
	// immediately and releases the continuation.
	if cont, kids := w.sjob.ScriptFork(); len(kids) > 0 || cont != nil {
		w.fork = forkRec{called: true, cont: cont, children: kids}
	}
	return true
}
