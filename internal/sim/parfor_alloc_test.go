package sim

import (
	"testing"

	"repro/internal/job"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/sched"
)

// parforAllocs returns the average heap allocations of one engine run of a
// parallel for over `leaves` unit ranges. With fork-pair pooling the split
// path recycles its fork contexts as subtrees complete, so allocations are
// bounded by the peak number of live splits (O(depth) under LIFO
// work-stealing), not by the total split count.
func parforAllocs(t *testing.T, leaves int, annotated bool) float64 {
	t.Helper()
	m := machine.Flat(1, 1<<16)
	var size job.RangeSize
	if annotated {
		size = func(lo, hi int) int64 { return int64(hi-lo) * 8 }
	}
	return testing.AllocsPerRun(3, func() {
		sp := mem.NewSpace(m.Links, m.Links)
		root := job.For(0, leaves, 1, size, func(ctx job.Ctx, i int) { ctx.Work(10) })
		if _, err := Run(Config{Machine: m, Space: sp, Scheduler: sched.NewWS(), Seed: 1}, root); err != nil {
			t.Fatal(err)
		}
	})
}

// TestParallelForAllocFree pins the fork-pair pool: quadrupling the leaf
// count multiplies the number of splits by ~4 (1,999 -> 7,999 splits), and
// before pooling each split cost three heap allocations. Pooled splits must
// not scale with split count — only with peak tree depth — so the large run
// may exceed the small one by at most a small constant.
// TestParallelForAllocFloor ratchets the absolute per-run allocation count
// of the bench-harness engine_parallel_for configuration (TwoSocket(4),
// 64K elements, grain 256, WS). History: 1094 before fork-pair pooling,
// 383 after, now under 100 with slab-refilled pools, shared worker yield/
// exited channels, merged cache backing arrays and preallocated dequeues.
// If this fails AFTER a deliberate engine change, re-measure with
// `go test -bench BenchmarkHarnessEngine -benchmem ./internal/exp` and
// justify the new floor; it must never drift upward silently.
func TestParallelForAllocFloor(t *testing.T) {
	m := machine.TwoSocket(4, 1<<18, 1<<13)
	allocs := testing.AllocsPerRun(5, func() {
		sp := mem.NewSpace(m.Links, m.Links)
		arr := sp.NewF64("xs", 1<<16)
		root := job.For(0, arr.Len(), 256,
			func(lo, hi int) int64 { return int64(hi-lo) * 8 },
			func(ctx job.Ctx, i int) { arr.Write(ctx, i, 1) })
		if _, err := Run(Config{Machine: m, Space: sp, Scheduler: sched.NewWS(), Seed: 1}, root); err != nil {
			t.Fatal(err)
		}
	})
	const floor = 100
	if allocs > floor {
		t.Errorf("engine_parallel_for run costs %.0f allocs, ratchet is %d", allocs, floor)
	}
}

func TestParallelForAllocFree(t *testing.T) {
	for _, tc := range []struct {
		name      string
		annotated bool
	}{
		{"plain", false},
		{"annotated", true},
	} {
		small := parforAllocs(t, 2_000, tc.annotated)
		large := parforAllocs(t, 8_000, tc.annotated)
		// ~6,000 extra splits between the runs (≈18,000 allocations before
		// pooling); allow slack for two extra levels of tree depth plus
		// runtime-internal noise.
		if large > small+60 {
			t.Errorf("%s: parallel-for allocations scale with splits: 2000 leaves -> %.0f allocs, 8000 leaves -> %.0f allocs", tc.name, small, large)
		}
	}
}
