package sim

import (
	"fmt"
	"strings"

	"repro/internal/cachesim"
	"repro/internal/machine"
)

// WorkerTimes is the per-core five-way time breakdown of §3.3.
type WorkerTimes struct {
	Buckets [numBuckets]int64
}

// Active returns the cycles spent executing program code.
func (t WorkerTimes) Active() int64 { return t.Buckets[BucketActive] }

// Overhead returns the combined scheduler overhead: add + done + get +
// empty-queue time, the paper's "average overhead" (measures ii–v).
func (t WorkerTimes) Overhead() int64 {
	return t.Buckets[BucketAdd] + t.Buckets[BucketDone] + t.Buckets[BucketGet] + t.Buckets[BucketEmpty]
}

// Result reports the measurements of one simulation run.
type Result struct {
	Machine   *machine.Desc
	Scheduler string

	// WallCycles is the makespan: the largest core clock at completion.
	WallCycles int64
	// Workers holds each core's time breakdown.
	Workers []WorkerTimes

	// Tasks and Strands count the program's decomposition.
	Tasks, Strands uint64

	// MissesPerLevel[i] is the total misses of all level-i caches
	// (index 1 = outermost = the paper's L3 metric; index 0 unused).
	MissesPerLevel []int64
	// DRAMAccesses counts lines fetched from memory; StallCycles counts
	// cycles cores waited on busy DRAM links (bandwidth contention);
	// Writebacks counts dirty lines written back; RemoteHits counts DRAM
	// accesses that crossed to another socket's link.
	DRAMAccesses int64
	StallCycles  int64
	Writebacks   int64
	RemoteHits   int64

	// Fault-injection diagnostics (zero without a fault plan). Migrations
	// counts strands re-homed by scheduler CoreDown callbacks, FaultEvents
	// the perturbation events applied, and OfflineCycles the core-cycles
	// spent offline. Deliberately excluded from Fingerprint(): the
	// fingerprint pins the machine-observable schedule, and these are
	// derived bookkeeping about the plan itself.
	Migrations    int64
	FaultEvents   int
	OfflineCycles int64

	// Hier exposes the full cache hierarchy for detailed inspection.
	Hier *cachesim.Hierarchy
}

// avg returns the mean over workers of f, in cycles.
func (r *Result) avg(f func(WorkerTimes) int64) float64 {
	var sum int64
	for _, w := range r.Workers {
		sum += f(w)
	}
	return float64(sum) / float64(len(r.Workers))
}

// ActiveAvg returns the active time averaged over all cores, in cycles —
// the quantity the paper plots as "Active Time".
func (r *Result) ActiveAvg() float64 { return r.avg(WorkerTimes.Active) }

// OverheadAvg returns the scheduler + load-imbalance overhead averaged over
// all cores, in cycles — the paper's "Overhead".
func (r *Result) OverheadAvg() float64 { return r.avg(WorkerTimes.Overhead) }

// BucketAvg returns the average over cores of one accounting bucket.
func (r *Result) BucketAvg(bucket int) float64 {
	return r.avg(func(t WorkerTimes) int64 { return t.Buckets[bucket] })
}

// EmptyAvg returns the average empty-queue (load-imbalance) time in cycles.
func (r *Result) EmptyAvg() float64 { return r.BucketAvg(BucketEmpty) }

// TimeAvg returns ActiveAvg + OverheadAvg: the per-core execution time the
// paper's bar charts stack.
func (r *Result) TimeAvg() float64 { return r.ActiveAvg() + r.OverheadAvg() }

// ActiveSeconds converts ActiveAvg to seconds at the machine clock.
func (r *Result) ActiveSeconds() float64 { return r.Machine.Seconds(int64(r.ActiveAvg())) }

// OverheadSeconds converts OverheadAvg to seconds at the machine clock.
func (r *Result) OverheadSeconds() float64 { return r.Machine.Seconds(int64(r.OverheadAvg())) }

// WallSeconds converts WallCycles to seconds at the machine clock.
func (r *Result) WallSeconds() float64 { return r.Machine.Seconds(r.WallCycles) }

// L3Misses returns the misses of the outermost cache level, the paper's
// headline metric.
func (r *Result) L3Misses() int64 {
	if len(r.MissesPerLevel) < 2 {
		return 0
	}
	return r.MissesPerLevel[1]
}

// Fingerprint renders every deterministic observable of the run — wall
// clock, per-worker time buckets, task/strand counts, per-cache hit/miss/
// eviction counters and the DRAM accounting — as one canonical string.
// Two runs of the same configuration must produce byte-identical
// fingerprints; the golden determinism tests pin these strings so that
// hot-path optimisations provably preserve simulation semantics.
func (r *Result) Fingerprint() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sched=%s machine=%s wall=%d tasks=%d strands=%d\n",
		r.Scheduler, r.Machine.Name, r.WallCycles, r.Tasks, r.Strands)
	for i, w := range r.Workers {
		fmt.Fprintf(&b, "w%d:", i)
		for _, v := range w.Buckets {
			fmt.Fprintf(&b, " %d", v)
		}
		b.WriteByte('\n')
	}
	if r.Hier != nil {
		for lvl := 1; lvl < r.Machine.NumLevels(); lvl++ {
			for id, c := range r.Hier.Caches(lvl) {
				fmt.Fprintf(&b, "L%d.%d: h=%d m=%d e=%d\n", lvl, id, c.Stats.Hits, c.Stats.Misses, c.Stats.Evictions)
			}
		}
	}
	fmt.Fprintf(&b, "dram=%d stall=%d wb=%d remote=%d\n", r.DRAMAccesses, r.StallCycles, r.Writebacks, r.RemoteHits)
	return b.String()
}

// String renders a compact multi-line report.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s on %s: wall=%d cycles (%.4fs)\n", r.Scheduler, r.Machine.Name, r.WallCycles, r.WallSeconds())
	fmt.Fprintf(&b, "  tasks=%d strands=%d\n", r.Tasks, r.Strands)
	fmt.Fprintf(&b, "  avg active=%.0f overhead=%.0f (add=%.0f done=%.0f get=%.0f empty=%.0f)\n",
		r.ActiveAvg(), r.OverheadAvg(),
		r.BucketAvg(BucketAdd), r.BucketAvg(BucketDone), r.BucketAvg(BucketGet), r.BucketAvg(BucketEmpty))
	for lvl := 1; lvl < len(r.MissesPerLevel); lvl++ {
		fmt.Fprintf(&b, "  %s misses=%d\n", r.Machine.Levels[lvl].Name, r.MissesPerLevel[lvl])
	}
	fmt.Fprintf(&b, "  dram=%d lines (+%d writebacks, %d remote), stall=%d cycles",
		r.DRAMAccesses, r.Writebacks, r.RemoteHits, r.StallCycles)
	return b.String()
}
