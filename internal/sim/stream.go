package sim

import (
	"repro/internal/fault"
	"repro/internal/job"
)

// This file is the online half of the engine: a simulation that accepts
// root jobs *while it runs*. A Source feeds Injections — root tasks with
// arrival semantics decided by the caller (open-loop arrivals, admission
// control, closed-loop feedback) — and is notified as each injected root
// completes, so sources can react to completions in simulated time. The
// batch entry point Run is the one-shot special case of this mechanism.

// Injection is one root job entering a running simulation.
type Injection struct {
	// Tag is the caller's correlation id, echoed back in Source.Done.
	Tag uint64
	// Job is the root job to spawn. Multiple injected roots coexist: their
	// tasks compete for the same caches under the same scheduler. Job may
	// be nil when the injection carries only a Flush.
	Job job.Job
	// Flush, if non-nil, invalidates the named caches at injection time —
	// before Job (if any) spawns. Unlike a fault.Plan flush, whose times
	// are compiled at engine construction, an injected flush fires at a
	// time the source chose while the run was already underway; the
	// cluster autoscaler uses it to model the cold caches of a machine
	// re-entering service. Flush.Time is ignored (the injection's own
	// timing governs); Level < 0 flushes every cache level.
	Flush *fault.Flush
}

// RootStats reports the lifecycle timestamps (simulated cycles) of one
// injected root task.
type RootStats struct {
	// Enqueued is when the root strand was handed to the scheduler.
	Enqueued int64
	// Start is when the root task's first strand began executing.
	Start int64
	// End is when the root task and all of its descendants completed.
	End int64
}

// Source feeds root jobs into a running simulation. All methods are called
// on the engine goroutine, so implementations need no locking; any state
// they keep must be updated deterministically for runs to stay
// reproducible.
type Source interface {
	// Pending returns the simulated time of the source's earliest pending
	// event, or ok=false when none is currently pending (stream exhausted,
	// or waiting on a completion). The engine polls it every event-loop
	// iteration.
	Pending() (t int64, ok bool)
	// Pop consumes the pending event once simulated time reaches it. It
	// returns ok=false when the event was internal bookkeeping (e.g. an
	// arrival that admission control queued or dropped) and produced no
	// injection.
	Pop() (Injection, bool)
	// Done reports that the root task injected with tag has fully
	// completed. It may cause new pending events (closed-loop arrivals,
	// admission-queue releases).
	Done(tag uint64, r RootStats)
}

// oneShot is the Source behind the batch Run entry point: a single root
// injected at time zero.
type oneShot struct {
	root job.Job
	done bool
}

func (o *oneShot) Pending() (int64, bool) { return 0, !o.done }

func (o *oneShot) Pop() (Injection, bool) {
	o.done = true
	return Injection{Job: o.root}, true
}

func (o *oneShot) Done(uint64, RootStats) {}

// RunStream executes every root job the source injects, from simulated
// time zero until the source has no pending events and all injected roots
// have completed, and returns the measured Result. Injection events are
// interleaved with worker events in simulated-time order, and each
// injection's scheduler add is charged to the core that was earliest when
// the injection fired (the core taking the dispatch interrupt).
func RunStream(cfg Config, src Source) (*Result, error) {
	if cfg.Machine == nil || cfg.Space == nil || cfg.Scheduler == nil {
		return nil, errConfig()
	}
	if err := cfg.Machine.Validate(); err != nil {
		return nil, errMachine(err)
	}
	if src == nil {
		return nil, errNilSource()
	}
	if !cfg.Faults.Empty() {
		if err := cfg.Faults.Validate(cfg.Machine); err != nil {
			return nil, errMachine(err)
		}
	}
	normalizeCosts(&cfg)
	e := newEngine(cfg)
	defer e.shutdown()
	return e.run(src)
}
