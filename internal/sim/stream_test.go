package sim

import (
	"testing"

	"repro/internal/job"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/sched"
)

// listSource injects a fixed schedule of root jobs and records completions.
type listSource struct {
	at   []int64
	jobs []job.Job
	i    int
	done map[uint64]RootStats
}

func (l *listSource) Pending() (int64, bool) {
	if l.i < len(l.at) {
		return l.at[l.i], true
	}
	return 0, false
}

func (l *listSource) Pop() (Injection, bool) {
	inj := Injection{Tag: uint64(l.i), Job: l.jobs[l.i]}
	l.i++
	return inj, true
}

func (l *listSource) Done(tag uint64, r RootStats) {
	if l.done == nil {
		l.done = make(map[uint64]RootStats)
	}
	l.done[tag] = r
}

// mapJob builds a sized parallel map writing i*mult into its array.
func mapJob(arr mem.F64, mult float64) job.Job {
	size := func(lo, hi int) int64 { return int64(hi-lo) * 8 }
	return job.For(0, arr.Len(), 64, size, func(ctx job.Ctx, i int) {
		arr.Write(ctx, i, float64(i)*mult)
	})
}

func TestRunStreamSingleRootMatchesRun(t *testing.T) {
	m := machine.TwoSocket(4, 1<<16, 1<<12)
	for _, name := range allSchedulers() {
		run := func(stream bool) *Result {
			sp := mem.NewSpace(m.Links, m.Links)
			arr := sp.NewF64("xs", 2048)
			cfg := Config{Machine: m, Space: sp, Scheduler: sched.New(name), Seed: 11}
			var res *Result
			var err error
			if stream {
				res, err = RunStream(cfg, &listSource{at: []int64{0}, jobs: []job.Job{mapJob(arr, 2)}})
			} else {
				res, err = Run(cfg, mapJob(arr, 2))
			}
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			return res
		}
		a, b := run(false), run(true)
		if a.WallCycles != b.WallCycles || a.L3Misses() != b.L3Misses() || a.Strands != b.Strands {
			t.Errorf("%s: RunStream single root diverges from Run: wall %d vs %d, L3 %d vs %d, strands %d vs %d",
				name, a.WallCycles, b.WallCycles, a.L3Misses(), b.L3Misses(), a.Strands, b.Strands)
		}
		for i := range a.Workers {
			if a.Workers[i] != b.Workers[i] {
				t.Errorf("%s: worker %d timers differ between Run and RunStream", name, i)
			}
		}
	}
}

func TestRunStreamConcurrentRootsAllSchedulers(t *testing.T) {
	m := machine.TwoSocket(4, 1<<16, 1<<12)
	const jobs = 5
	for _, name := range allSchedulers() {
		sp := mem.NewSpace(m.Links, m.Links)
		arrs := make([]mem.F64, jobs)
		roots := make([]job.Job, jobs)
		at := make([]int64, jobs)
		for j := 0; j < jobs; j++ {
			arrs[j] = sp.NewF64("xs", 1024)
			roots[j] = mapJob(arrs[j], float64(j+1))
			at[j] = int64(j) * 500 // overlapping arrivals: jobs coexist
		}
		src := &listSource{at: at, jobs: roots}
		res, err := RunStream(Config{Machine: m, Space: sp, Scheduler: sched.New(name), Seed: 3}, src)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(src.done) != jobs {
			t.Fatalf("%s: %d completions, want %d", name, len(src.done), jobs)
		}
		for j := 0; j < jobs; j++ {
			r := src.done[uint64(j)]
			if r.Enqueued < at[j] || r.Start < r.Enqueued || r.End <= r.Start {
				t.Errorf("%s job %d: inconsistent lifecycle enq=%d start=%d end=%d (arrival %d)",
					name, j, r.Enqueued, r.Start, r.End, at[j])
			}
			if r.End > res.WallCycles {
				t.Errorf("%s job %d: end %d past wall %d", name, j, r.End, res.WallCycles)
			}
			for i, v := range arrs[j].Data {
				if v != float64(i)*float64(j+1) {
					t.Fatalf("%s job %d: element %d = %v, want %v", name, j, i, v, float64(i)*float64(j+1))
				}
			}
		}
	}
}

func TestRunStreamConcurrentRootsAnchorIndependently(t *testing.T) {
	// Two annotated jobs that each fit a socket L2 must anchor as separate
	// maximal tasks under SB, and all anchored space must be released by
	// the time the stream drains.
	m := machine.TwoSocket(4, 1<<16, 1<<12)
	sb := sched.NewSB(sched.DefaultSigma, sched.DefaultMu)
	sp := mem.NewSpace(m.Links, m.Links)
	a := sp.NewF64("a", 512)
	b := sp.NewF64("b", 512)
	src := &listSource{at: []int64{0, 0}, jobs: []job.Job{mapJob(a, 3), mapJob(b, 5)}}
	if _, err := RunStream(Config{Machine: m, Space: sp, Scheduler: sb, Seed: 9}, src); err != nil {
		t.Fatal(err)
	}
	var anchors int64
	for _, n := range sb.Anchors {
		anchors += n
	}
	if anchors < 2 {
		t.Errorf("SB anchored %d tasks across two concurrent roots, want >= 2", anchors)
	}
	for lvl := 1; lvl <= m.CacheLevels(); lvl++ {
		for id := 0; id < m.NodesAt(lvl); id++ {
			if occ := sb.Occupancy(lvl, id); occ != 0 {
				t.Errorf("cache (%d,%d) still holds %d bytes after drain", lvl, id, occ)
			}
		}
	}
}

func TestRunStreamFastForwardsIdleGaps(t *testing.T) {
	// A huge gap between two tiny jobs must be collapsed, not idle-spun:
	// the run finishes, wall covers the gap, and the gap is accounted as
	// empty-queue time.
	m := machine.Flat(2, 1<<16)
	sp := mem.NewSpace(m.Links, m.Links)
	a := sp.NewF64("a", 256)
	b := sp.NewF64("b", 256)
	const gap = int64(1) << 40
	src := &listSource{at: []int64{0, gap}, jobs: []job.Job{mapJob(a, 2), mapJob(b, 4)}}
	res, err := RunStream(Config{Machine: m, Space: sp, Scheduler: sched.New("ws"), Seed: 1}, src)
	if err != nil {
		t.Fatal(err)
	}
	if res.WallCycles < gap {
		t.Fatalf("wall %d does not cover the arrival gap %d", res.WallCycles, gap)
	}
	for i, w := range res.Workers {
		if w.Buckets[BucketEmpty] < gap/2 {
			t.Errorf("worker %d empty time %d does not account for the idle gap", i, w.Buckets[BucketEmpty])
		}
	}
}

func TestRunStreamSamplerFiresOnSchedule(t *testing.T) {
	m := machine.Flat(2, 1<<16)
	sp := mem.NewSpace(m.Links, m.Links)
	arr := sp.NewF64("xs", 4096)
	var ticks []int64
	const every = int64(10_000)
	res, err := RunStream(Config{
		Machine: m, Space: sp, Scheduler: sched.New("ws"), Seed: 1,
		Sampler: func(now int64) { ticks = append(ticks, now) }, SampleEvery: every,
	}, &listSource{at: []int64{0}, jobs: []job.Job{mapJob(arr, 2)}})
	if err != nil {
		t.Fatal(err)
	}
	if len(ticks) == 0 {
		t.Fatalf("sampler never fired over %d wall cycles", res.WallCycles)
	}
	for i, now := range ticks {
		if now != every*int64(i+1) {
			t.Fatalf("tick %d at %d, want %d", i, now, every*int64(i+1))
		}
	}
}
