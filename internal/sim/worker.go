package sim

import (
	"repro/internal/job"
	"repro/internal/mem"
	"repro/internal/xrand"
)

type yieldKind uint8

const (
	yieldChunk   yieldKind = iota // chunk budget exhausted, strand continues
	yieldDone                     // strand code returned
	yieldPanic                    // strand code panicked
	yieldStopped                  // goroutine unwound during shutdown
)

type yieldMsg struct {
	kind     yieldKind
	panicVal any
}

// workerStopped unwinds a worker goroutine paused mid-strand when the
// engine shuts down on an error path.
type workerStopped struct{}

// worker is one simulated core: a goroutine that executes strand code,
// cooperatively yielding to the engine every chunk of simulated cycles.
//
// Synchronization invariant: the engine and the workers form a baton-pass —
// at any moment at most one of them runs. Outside engine.step every worker
// is blocked receiving on resume (at the loop top when idle, inside pause
// when mid-strand), so worker code may freely touch engine state (caches,
// clocks) without locks and the whole simulation is deterministic.
type worker struct {
	id   int // logical core id (scheduler-visible)
	leaf int // leaf position in the cache tree

	clock  int64
	timers [numBuckets]int64
	rng    xrand.Source

	cur *job.Strand

	// ctx is the reusable job.Ctx for strands run on this worker,
	// embedded here so strand execution allocates nothing per strand.
	ctx wctx

	// resume: engine → worker "run until your next yield" (per worker:
	// all workers block on their own resume simultaneously).
	// yield:  worker → engine, exactly one reply per resume. Shared by
	// every worker of an engine — the baton-pass invariant (at most one
	// worker runs at a time) guarantees only the resumed worker can send.
	// exited: shared, buffered; each goroutine sends one token on return.
	resume chan struct{}
	yield  chan yieldMsg
	exited chan struct{}

	// chunkLeft is the remaining simulated-cycle budget before the current
	// chunk must yield.
	chunkLeft int64

	// virtualPop is the simulated time at which the engine (actually or
	// virtually) last popped this worker to run its current chunk. When a
	// chunk boundary is batched away (see wctx.pause), the pop that
	// fine-grained execution would have performed is recorded here so the
	// engine can later replay the idle polls that ordered before it.
	virtualPop int64

	// Inline-script state (engine.runInline). script is non-nil iff the
	// current strand is a job.Scripted executing on the engine goroutine
	// instead of this worker's goroutine; sip/send delimit the remaining
	// ops and sprev is the delta-decoding previous address, saved across
	// chunk yields.
	script []byte
	sjob   job.Scripted
	sip    int64
	send   int64
	sprev  int64

	// Terminal-fork record for the current strand.
	fork forkRec
}

// forkRec captures the terminal Fork/ForkFuture/ForkAwait of one strand.
type forkRec struct {
	called       bool
	cont         job.Job
	children     []job.Job
	awaits       []*job.Future
	futureHandle *job.Future
	futureBody   job.Job
}

// loop is the worker goroutine body: wait for a strand, run it, report.
func (w *worker) loop(e *engine) {
	defer func() { w.exited <- struct{}{} }()
	for range w.resume {
		msg := w.runStrand(e)
		if msg.kind == yieldStopped {
			return
		}
		w.yield <- msg
	}
}

func (w *worker) runStrand(e *engine) (msg yieldMsg) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(workerStopped); ok {
				msg = yieldMsg{kind: yieldStopped}
				return
			}
			msg = yieldMsg{kind: yieldPanic, panicVal: r}
		}
	}()
	w.cur.Job.Run(&w.ctx)
	return yieldMsg{kind: yieldDone}
}

// begin prepares the worker to execute w.cur from its start.
func (w *worker) begin(e *engine) {
	w.chunkLeft = e.cost.ChunkCycles
	w.fork = forkRec{}
}

// runChunk resumes the worker until its next yield and returns the yield.
// Called on the engine goroutine.
//
//schedlint:hotpath
func (w *worker) runChunk() yieldMsg {
	w.resume <- struct{}{}
	return <-w.yield
}

// takeFork consumes the terminal-fork record of the finished strand.
func (w *worker) takeFork() forkRec {
	rec := w.fork
	w.fork = forkRec{}
	return rec
}

// wctx implements job.Ctx for one strand execution on one worker.
type wctx struct {
	w *worker
	e *engine
}

// pause hands control back to the engine between chunks. If the engine has
// shut down (resume closed), unwind the strand via workerStopped.
//
// Fast path (chunk batching): a chunk boundary may be skipped — no
// channel round-trip, just w.virtualPop recording the pop the engine
// would have performed — whenever the boundary is provably unobservable.
// No sampler may be armed, no fault event and no injection due at or
// before w.clock (otherwise the engine must interpose), and one of:
//
//   - this worker runs the only live strand: every event the baseline
//     engine would interleave before this strand's next real boundary is
//     a failed idle poll, and engine.drainIdle replays exactly those (in
//     heap order) before the strand's fork publishes; or
//   - this worker still orders strictly before every other worker in the
//     heap: the baseline engine would push and immediately re-pop it,
//     touching nothing — drainIdle then has nothing to replay.
//
// Every term of the condition only changes through engine actions, and
// the engine is parked while strand code runs, so the decision cannot be
// invalidated between boundaries.
//
//schedlint:hotpath
func (c *wctx) pause() {
	w, e := c.w, c.e
	if !e.sampling && w.clock < e.nextFault &&
		(e.liveStrands == 1 ||
			w.clock < e.nextClock || (w.clock == e.nextClock && w.id < e.nextID)) {
		if t, pending := e.src.Pending(); !pending || t > w.clock {
			w.virtualPop = w.clock
			w.chunkLeft = e.cost.ChunkCycles
			return
		}
	}
	w.yield <- yieldMsg{kind: yieldChunk}
	if _, ok := <-w.resume; !ok {
		panic(workerStopped{})
	}
	w.chunkLeft = e.cost.ChunkCycles
}

// spend charges cycles of program execution (active time) and yields when
// the chunk budget is exhausted. A straggler fault dilates the charge:
// every nominal cycle costs mult/100 cycles on the afflicted core
// (integer arithmetic, so the dilation is exactly reproducible).
//
//schedlint:hotpath
func (c *wctx) spend(cycles int64) {
	if f := c.e.flt; f != nil {
		if m := f.mult[c.w.id]; m != 100 {
			cycles = cycles * m / 100
		}
	}
	c.w.clock += cycles
	c.w.timers[BucketActive] += cycles
	c.w.chunkLeft -= cycles
	if c.w.chunkLeft <= 0 {
		c.pause()
	}
}

// Access implements job.Ctx (and mem.Accessor): simulate the access on the
// worker's cache path and charge its cost. The access is reported to the
// trace recorder (when armed) before simulation, so recorded op streams are
// in exact program order regardless of cache state.
//
//schedlint:hotpath
func (c *wctx) Access(a mem.Addr, write bool) {
	if r := c.e.rec; r != nil {
		r.StrandAccess(c.w.cur, a, write)
	}
	cost, _ := c.e.h.Access(c.w.leaf, c.w.clock, a, write)
	c.spend(cost)
}

// Work implements job.Ctx: charge pure compute cycles.
func (c *wctx) Work(cycles int64) {
	if cycles <= 0 {
		return
	}
	if r := c.e.rec; r != nil {
		r.StrandWork(c.w.cur, cycles)
	}
	c.spend(cycles)
}

// Fork implements job.Ctx: record the strand's terminal fork.
func (c *wctx) Fork(cont job.Job, children ...job.Job) {
	c.terminal()
	if len(children) == 0 {
		panic("sim: Fork with no children")
	}
	c.w.fork = forkRec{called: true, cont: cont, children: children}
}

// ForkFuture implements job.Ctx.
func (c *wctx) ForkFuture(cont job.Job, f *job.Future, body job.Job) {
	c.terminal()
	if f == nil || body == nil {
		panic("sim: ForkFuture requires a future handle and a body")
	}
	c.w.fork = forkRec{called: true, cont: cont, futureHandle: f, futureBody: body}
}

// ForkAwait implements job.Ctx.
func (c *wctx) ForkAwait(cont job.Job, futures []*job.Future, children ...job.Job) {
	c.terminal()
	if cont == nil {
		panic("sim: ForkAwait requires a continuation")
	}
	for _, f := range futures {
		if f == nil {
			panic("sim: ForkAwait with nil future")
		}
	}
	c.w.fork = forkRec{called: true, cont: cont, children: children, awaits: futures}
}

// terminal enforces the one-terminal-call-per-strand discipline.
func (c *wctx) terminal() {
	if c.w.fork.called {
		panic("sim: fork primitive called twice in one strand (must be terminal)")
	}
}

// AllocForPair implements job.ForPairAllocator: parallel-for fork
// contexts come from the engine's pair pool. Safe off the engine
// goroutine for the usual baton-pass reason — the engine is parked while
// strand code runs.
func (c *wctx) AllocForPair() *job.ForPair { return c.e.allocForPair() }

// Worker implements job.Ctx.
func (c *wctx) Worker() int { return c.w.id }

// RNG implements job.Ctx.
func (c *wctx) RNG() *xrand.Source { return &c.w.rng }
