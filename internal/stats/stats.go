// Package stats implements the summary statistics used to report
// experimental results.
//
// The paper reports "the average of at least 10 runs with the smallest and
// largest readings across runs removed" (§5.3). TrimmedMean implements that
// estimator exactly; the other helpers support the derived quantities shown
// in the figures (percent change, speedup, standard deviation).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// TrimmedMean returns the mean of xs after removing one minimum and one
// maximum element, matching the paper's reporting methodology. With fewer
// than three samples nothing is trimmed. An empty slice yields NaN.
func TrimmedMean(xs []float64) float64 {
	switch len(xs) {
	case 0:
		return math.NaN()
	case 1:
		return xs[0]
	case 2:
		return (xs[0] + xs[1]) / 2
	}
	// Drop one minimum and one maximum at distinct indices (with all-equal
	// samples these are simply two arbitrary elements).
	lo, hi := 0, 1
	if xs[hi] < xs[lo] {
		lo, hi = hi, lo
	}
	for i := 2; i < len(xs); i++ {
		if xs[i] < xs[lo] {
			lo = i
		} else if xs[i] > xs[hi] {
			hi = i
		}
	}
	sum := 0.0
	for i, v := range xs {
		if i == lo || i == hi {
			continue
		}
		sum += v
	}
	return sum / float64(len(xs)-2)
}

// Mean returns the arithmetic mean, or NaN for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, v := range xs {
		sum += v
	}
	return sum / float64(len(xs))
}

// StdDev returns the sample standard deviation (n-1 denominator), or 0 for
// fewer than two samples.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	ss := 0.0
	for _, v := range xs {
		d := v - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// Median returns the median of xs without modifying it, or NaN if empty.
func Median(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return math.NaN()
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	if n%2 == 1 {
		return cp[n/2]
	}
	return (cp[n/2-1] + cp[n/2]) / 2
}

// Percentile returns the p-th percentile of xs (p in [0,100], clamped) by
// the nearest-rank method: the smallest element with at least ⌈p/100·n⌉
// elements at or below it. It does not modify xs and yields NaN for an
// empty slice. Percentile(xs, 50) is the nearest-rank median; the serving
// experiments report p50/p95/p99 latencies with it.
func Percentile(xs []float64, p float64) float64 {
	n := len(xs)
	if n == 0 {
		return math.NaN()
	}
	if p < 0 {
		p = 0
	} else if p > 100 {
		p = 100
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	rank := int(math.Ceil(p / 100 * float64(n)))
	if rank < 1 {
		rank = 1
	}
	return cp[rank-1]
}

// PercentChange returns 100*(to-from)/from: negative means "to" is smaller.
// A zero baseline yields NaN rather than Inf so tables stay readable.
func PercentChange(from, to float64) float64 {
	if from == 0 {
		return math.NaN()
	}
	return 100 * (to - from) / from
}

// Speedup returns base/improved — how many times faster "improved" is than
// "base". A zero improved value yields NaN.
func Speedup(base, improved float64) float64 {
	if improved == 0 {
		return math.NaN()
	}
	return base / improved
}

// Min returns the smallest element; it panics on an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Min of empty slice")
	}
	m := xs[0]
	for _, v := range xs[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Max returns the largest element; it panics on an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Max of empty slice")
	}
	m := xs[0]
	for _, v := range xs[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Summary aggregates repeated measurements of a single metric.
type Summary struct {
	N       int
	Mean    float64 // trimmed mean (paper methodology)
	RawMean float64
	Std     float64
	MinV    float64
	MaxV    float64
}

// Summarize computes a Summary over xs. It panics on an empty slice: every
// experiment cell must have at least one sample.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		panic("stats: Summarize of empty slice")
	}
	return Summary{
		N:       len(xs),
		Mean:    TrimmedMean(xs),
		RawMean: Mean(xs),
		Std:     StdDev(xs),
		MinV:    Min(xs),
		MaxV:    Max(xs),
	}
}

// String renders the summary as "mean ±std [min,max] (n)".
func (s Summary) String() string {
	return fmt.Sprintf("%.4g ±%.2g [%.4g,%.4g] (n=%d)", s.Mean, s.Std, s.MinV, s.MaxV, s.N)
}
