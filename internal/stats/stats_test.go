package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestTrimmedMean(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{[]float64{5}, 5},
		{[]float64{4, 6}, 5},
		{[]float64{1, 2, 3}, 2},           // drop 1 and 3
		{[]float64{100, 1, 2, 3}, 2.5},    // drop 1 and 100
		{[]float64{7, 7, 7, 7}, 7},        // ties: drop one min, one max
		{[]float64{0, 10, 5, 5, 5, 5}, 5}, // outliers at both ends removed
	}
	for _, c := range cases {
		if got := TrimmedMean(c.in); !almost(got, c.want) {
			t.Errorf("TrimmedMean(%v) = %v, want %v", c.in, got, c.want)
		}
	}
	if !math.IsNaN(TrimmedMean(nil)) {
		t.Error("TrimmedMean(nil) should be NaN")
	}
}

func TestTrimmedMeanDropsExactlyTwo(t *testing.T) {
	// Property: for n>=3, the trimmed mean equals the plain mean of the
	// sorted slice minus its first and last elements.
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				// keep magnitudes small enough for stable float comparison
				xs = append(xs, math.Mod(v, 1e6))
			}
		}
		if len(xs) < 3 {
			return true
		}
		cp := append([]float64(nil), xs...)
		sort.Float64s(cp)
		want := Mean(cp[1 : len(cp)-1])
		got := TrimmedMean(xs)
		return math.Abs(got-want) <= 1e-6*(1+math.Abs(want))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMeanStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); !almost(got, 5) {
		t.Errorf("Mean = %v, want 5", got)
	}
	if got := StdDev(xs); math.Abs(got-2.138089935) > 1e-6 {
		t.Errorf("StdDev = %v, want ~2.138", got)
	}
	if StdDev([]float64{1}) != 0 {
		t.Error("StdDev of single sample should be 0")
	}
}

func TestMedian(t *testing.T) {
	if got := Median([]float64{3, 1, 2}); !almost(got, 2) {
		t.Errorf("Median odd = %v", got)
	}
	if got := Median([]float64{4, 1, 3, 2}); !almost(got, 2.5) {
		t.Errorf("Median even = %v", got)
	}
	in := []float64{9, 1, 5}
	Median(in)
	if in[0] != 9 || in[1] != 1 || in[2] != 5 {
		t.Error("Median mutated its input")
	}
}

func TestPercentChangeAndSpeedup(t *testing.T) {
	if got := PercentChange(100, 75); !almost(got, -25) {
		t.Errorf("PercentChange(100,75) = %v, want -25", got)
	}
	if got := Speedup(2.0, 1.0); !almost(got, 2) {
		t.Errorf("Speedup = %v, want 2", got)
	}
	if !math.IsNaN(PercentChange(0, 5)) {
		t.Error("PercentChange from zero should be NaN")
	}
	if !math.IsNaN(Speedup(1, 0)) {
		t.Error("Speedup with zero denominator should be NaN")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Errorf("Min/Max = %v/%v", Min(xs), Max(xs))
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 100})
	if s.N != 5 {
		t.Errorf("N = %d", s.N)
	}
	if !almost(s.Mean, 3) { // trim 1 and 100 → mean(2,3,4)
		t.Errorf("trimmed mean = %v, want 3", s.Mean)
	}
	if s.MinV != 1 || s.MaxV != 100 {
		t.Errorf("min/max = %v/%v", s.MinV, s.MaxV)
	}
	if s.String() == "" {
		t.Error("empty String()")
	}
}

func TestSummarizePanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Summarize(nil) did not panic")
		}
	}()
	Summarize(nil)
}

func TestPercentile(t *testing.T) {
	ten := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	hundred := make([]float64, 100)
	for i := range hundred {
		hundred[i] = float64(i + 1)
	}
	cases := []struct {
		name string
		xs   []float64
		p    float64
		want float64
	}{
		{"p50-ten", ten, 50, 5},
		{"p95-ten", ten, 95, 10},
		{"p99-ten", ten, 99, 10},
		{"p0-ten", ten, 0, 1},
		{"p100-ten", ten, 100, 10},
		{"p50-hundred", hundred, 50, 50},
		{"p95-hundred", hundred, 95, 95},
		{"p99-hundred", hundred, 99, 99},
		{"clamp-low", ten, -5, 1},
		{"clamp-high", ten, 250, 10},
		{"single", []float64{42}, 99, 42},
		{"unsorted", []float64{9, 1, 5, 3, 7}, 50, 5},
		{"duplicates", []float64{2, 2, 2, 8}, 75, 2},
	}
	for _, c := range cases {
		if got := Percentile(c.xs, c.p); got != c.want {
			t.Errorf("%s: Percentile(%v, %v) = %v, want %v", c.name, c.xs, c.p, got, c.want)
		}
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Error("Percentile(nil, 50) is not NaN")
	}
	// Percentile must not reorder its input.
	xs := []float64{9, 1, 5}
	Percentile(xs, 99)
	if xs[0] != 9 || xs[1] != 1 || xs[2] != 5 {
		t.Errorf("Percentile mutated its input: %v", xs)
	}
}
