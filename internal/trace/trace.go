// Package trace records schedules produced by the simulator and validates
// them against the paper's definitions: the non-preemptive schedule
// constraints of §2 (ordering, non-preemptive execution) and the defining
// properties of space-bounded schedulers of §4.1 (anchored, bounded).
//
// The Recorder implements the simulator's Listener interface; after a run
// it holds every strand with its (spawn, start, end, proc) times and every
// task with its completion time and anchor, which is exactly the
// (start, end, proc) schedule formalism of the paper.
package trace

import (
	"fmt"
	"sort"

	"repro/internal/job"
	"repro/internal/machine"
)

// Recorder accumulates the schedule of one simulation run. It must be
// passed as the run's Listener and not reused across runs.
type Recorder struct {
	Strands  []*job.Strand
	Tasks    []*job.Task
	TaskEnds map[*job.Task]int64
}

// New returns an empty Recorder.
func New() *Recorder {
	return &Recorder{TaskEnds: make(map[*job.Task]int64)}
}

// StrandSpawned implements the simulator Listener.
func (r *Recorder) StrandSpawned(s *job.Strand) {
	r.Strands = append(r.Strands, s)
	if s.Kind == job.TaskStart {
		r.Tasks = append(r.Tasks, s.Task)
	}
}

// StrandStarted implements the simulator Listener.
func (r *Recorder) StrandStarted(s *job.Strand) {}

// StrandEnded implements the simulator Listener.
func (r *Recorder) StrandEnded(s *job.Strand) {}

// TaskEnded implements the simulator Listener.
func (r *Recorder) TaskEnded(t *job.Task, now int64) { r.TaskEnds[t] = now }

// taskStart returns the start time of t: the start of its first strand.
func (r *Recorder) taskStarts() map[*job.Task]int64 {
	starts := make(map[*job.Task]int64, len(r.Tasks))
	for _, s := range r.Strands {
		if s.Kind != job.TaskStart {
			continue
		}
		starts[s.Task] = s.Start
	}
	return starts
}

// ValidateSchedule checks the §2 constraints of a non-preemptive schedule:
// every strand was executed (start ≥ spawn, end ≥ start, proc assigned),
// and no two strands were live on the same core at the same time.
func (r *Recorder) ValidateSchedule(m *machine.Desc) error {
	perProc := make(map[int][]*job.Strand)
	for _, s := range r.Strands {
		if s.Proc < 0 || s.Proc >= m.NumCores() {
			return fmt.Errorf("trace: strand %d has invalid proc %d", s.ID, s.Proc)
		}
		if s.Start < s.Spawn {
			return fmt.Errorf("trace: strand %d started (%d) before it was spawned (%d)", s.ID, s.Start, s.Spawn)
		}
		if s.End < s.Start {
			return fmt.Errorf("trace: strand %d ended (%d) before it started (%d)", s.ID, s.End, s.Start)
		}
		perProc[s.Proc] = append(perProc[s.Proc], s)
	}
	// Non-preemptive execution: live intervals on one core are disjoint.
	for proc, ss := range perProc {
		sort.Slice(ss, func(i, j int) bool { return ss[i].Start < ss[j].Start })
		for i := 1; i < len(ss); i++ {
			if ss[i].Start < ss[i-1].End {
				return fmt.Errorf("trace: core %d ran strands %d and %d concurrently ([%d,%d) vs [%d,%d))",
					proc, ss[i-1].ID, ss[i].ID, ss[i-1].Start, ss[i-1].End, ss[i].Start, ss[i].End)
			}
		}
	}
	return nil
}

// ancestorNode returns the index at level lvl of the ancestor of the node
// with index id at level at (lvl <= at).
func ancestorNode(m *machine.Desc, at, id, lvl int) int {
	return id / (m.NodesAt(at) / m.NodesAt(lvl))
}

// ValidateSpaceBounded checks the defining properties of a space-bounded
// schedule (§4.1) with dilation σ:
//
//   - Anchored: every task with a size annotation is anchored to a
//     befitting cache (S(t;B) ≤ σM at the anchor level, and S(t;B) > σM one
//     level deeper unless the anchor is already the innermost cache — with
//     the root accepting everything too big for σM₁), and every strand of
//     the task executed on a core inside the anchor's cluster.
//
//   - Bounded: at every point in time, for every cache X, the sizes of the
//     maximal tasks occupying X (those anchored at X, plus skip-level tasks
//     anchored below X whose parents are anchored above X) sum to at most
//     M(X). (Strand occupancy min(µM, S(ℓ)) is charged by the scheduler but
//     validated only through Theorem 1's miss bound, since the practical
//     variant never blocks continuation strands on it.)
func (r *Recorder) ValidateSpaceBounded(m *machine.Desc, sigma float64) error {
	starts := r.taskStarts()
	sigmaM := func(lvl int) int64 { return int64(sigma * float64(m.Levels[lvl].Size)) }

	// --- anchored property ---
	for _, t := range r.Tasks {
		if t.AnchorLevel < 0 {
			return fmt.Errorf("trace: task %d was never anchored", t.ID)
		}
		if t.SizeBytes >= 0 && t.AnchorLevel >= 1 {
			if t.SizeBytes > sigmaM(t.AnchorLevel) {
				return fmt.Errorf("trace: task %d (size %d) anchored to level %d cache of σM=%d",
					t.ID, t.SizeBytes, t.AnchorLevel, sigmaM(t.AnchorLevel))
			}
		}
		if t.SizeBytes >= 0 && t.AnchorLevel == 0 && t.SizeBytes <= sigmaM(1) {
			// Befitting the outermost cache but anchored at the root is
			// only legal if the parent is also at the root and the task is
			// non-maximal; our scheduler anchors such tasks at the parent's
			// cache, so parent must be root-anchored.
			if t.Parent != nil && t.Parent.AnchorLevel > 0 {
				return fmt.Errorf("trace: task %d (size %d) anchored at root though it fits level-1 σM and parent is below root", t.ID, t.SizeBytes)
			}
		}
	}
	// Strands inside anchor clusters.
	for _, s := range r.Strands {
		t := s.Task
		if t.AnchorLevel <= 0 {
			continue // root cluster contains everything
		}
		leaf := m.LeafOf(s.Proc)
		if m.NodeOf(t.AnchorLevel, leaf) != t.AnchorNode {
			return fmt.Errorf("trace: strand %d of task %d ran on core %d outside anchor (level %d node %d)",
				s.ID, t.ID, s.Proc, t.AnchorLevel, t.AnchorNode)
		}
	}

	// --- bounded property (task terms) ---
	// A maximal task occupies caches from its anchor level up to (but not
	// including) its parent's anchor level, over [start, end].
	type event struct {
		time int64
		// +size at start (delta > 0 first when times tie is conservative:
		// process releases before charges at equal times).
		delta int64
		level int
		node  int
	}
	var events []event
	for _, t := range r.Tasks {
		if t.SizeBytes < 0 || t.AnchorLevel <= 0 {
			continue
		}
		paLvl := 0
		if t.Parent != nil && t.Parent.AnchorLevel > 0 {
			paLvl = t.Parent.AnchorLevel
		}
		if t.AnchorLevel == paLvl {
			continue // non-maximal: contained in the parent's footprint
		}
		st, ok1 := starts[t]
		en, ok2 := r.TaskEnds[t]
		if !ok1 || !ok2 {
			return fmt.Errorf("trace: task %d missing start or end time", t.ID)
		}
		for lvl := paLvl + 1; lvl <= t.AnchorLevel; lvl++ {
			node := ancestorNode(m, t.AnchorLevel, t.AnchorNode, lvl)
			events = append(events, event{st, t.SizeBytes, lvl, node})
			events = append(events, event{en, -t.SizeBytes, lvl, node})
		}
	}
	sort.Slice(events, func(i, j int) bool {
		if events[i].time != events[j].time {
			return events[i].time < events[j].time
		}
		return events[i].delta < events[j].delta // releases first on ties
	})
	occ := make(map[[2]int]int64)
	for _, ev := range events {
		key := [2]int{ev.level, ev.node}
		occ[key] += ev.delta
		if cap := m.Levels[ev.level].Size; occ[key] > cap {
			return fmt.Errorf("trace: bounded property violated at t=%d: level-%d cache %d holds %d > M=%d",
				ev.time, ev.level, ev.node, occ[key], cap)
		}
	}
	return nil
}

// WorkSpan computes the recorded computation's work W (total strand
// execution cycles) and span D (execution cycles along the longest
// dependency chain of the spawn DAG), the two program-centric quantities
// of the paper's cost models. The ratio W/D is the available parallelism.
//
// The chain lengths use measured strand durations, so W and D describe
// this schedule's costs (they include the cache effects the scheduler
// induced), not machine-independent instruction counts.
func (r *Recorder) WorkSpan() (work, span int64) {
	// A strand's chain length is its duration plus the longest chain among
	// the strands it spawned. Spawners always have smaller IDs than their
	// spawnees, so a reverse pass over the spawn-ordered record sees every
	// dependent before its spawner; best[x] accumulates the longest chain
	// hanging off strand x.
	best := make(map[*job.Strand]int64, len(r.Strands))
	for i := len(r.Strands) - 1; i >= 0; i-- {
		s := r.Strands[i]
		dur := s.End - s.Start
		work += dur
		c := dur + best[s]
		if p := s.SpawnedBy; p != nil {
			if c > best[p] {
				best[p] = c
			}
		} else if c > span {
			span = c
		}
	}
	return work, span
}

// Parallelism returns work divided by span (1 for empty traces).
func (r *Recorder) Parallelism() float64 {
	w, d := r.WorkSpan()
	if d == 0 {
		return 1
	}
	return float64(w) / float64(d)
}

// MaxConcurrency returns the largest number of strands live at once, a
// sanity metric for load-balance analyses.
func (r *Recorder) MaxConcurrency() int {
	type ev struct {
		t int64
		d int
	}
	var evs []ev
	for _, s := range r.Strands {
		evs = append(evs, ev{s.Start, 1}, ev{s.End, -1})
	}
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].t != evs[j].t {
			return evs[i].t < evs[j].t
		}
		return evs[i].d < evs[j].d
	})
	cur, max := 0, 0
	for _, e := range evs {
		cur += e.d
		if cur > max {
			max = cur
		}
	}
	return max
}
