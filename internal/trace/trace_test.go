package trace_test

import (
	"strings"
	"testing"

	"repro/internal/job"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/trace"
)

// dcJob is a synthetic divide-and-conquer workload: scan an array range,
// then recurse on the two halves — the same shape as the paper's RRM.
type dcJob struct {
	arr  mem.F64
	base int
}

func (d dcJob) Run(ctx job.Ctx) {
	n := d.arr.Len()
	for i := 0; i < n; i++ {
		d.arr.Write(ctx, i, d.arr.Read(ctx, i)+1)
	}
	if n <= d.base {
		return
	}
	ctx.Fork(nil,
		dcJob{arr: d.arr.Sub(0, n/2), base: d.base},
		dcJob{arr: d.arr.Sub(n/2, n), base: d.base})
}

func (d dcJob) Size(int64) int64       { return d.arr.Bytes() }
func (d dcJob) StrandSize(int64) int64 { return d.arr.Bytes() }

func runDC(t *testing.T, s sched.Scheduler, n int) (*trace.Recorder, *machine.Desc) {
	t.Helper()
	m := machine.TwoSocket(2, 64<<10, 4<<10)
	sp := mem.NewSpace(m.Links, m.Links)
	arr := sp.NewF64("xs", n)
	rec := trace.New()
	_, err := sim.Run(sim.Config{Machine: m, Space: sp, Scheduler: s, Seed: 11, Listener: rec},
		dcJob{arr: arr, base: 64})
	if err != nil {
		t.Fatal(err)
	}
	// Each element is incremented once per level of recursion it is part
	// of: levels = log2(n/base)+1; verify program correctness.
	levels := 1
	for sz := n; sz > 64; sz /= 2 {
		levels++
	}
	for i, v := range arr.Data {
		if v != float64(levels) {
			t.Fatalf("element %d = %v, want %d (program incorrect)", i, v, levels)
		}
	}
	return rec, m
}

func TestScheduleValidUnderAllSchedulers(t *testing.T) {
	for _, name := range []string{"ws", "pws", "cilk", "sb", "sbd"} {
		rec, m := runDC(t, sched.New(name), 4096)
		if err := rec.ValidateSchedule(m); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if len(rec.Strands) == 0 || len(rec.Tasks) == 0 {
			t.Errorf("%s: empty trace", name)
		}
	}
}

func TestSpaceBoundedPropertiesHold(t *testing.T) {
	for _, name := range []string{"sb", "sbd"} {
		rec, m := runDC(t, sched.New(name), 4096)
		if err := rec.ValidateSpaceBounded(m, sched.DefaultSigma); err != nil {
			t.Errorf("%s: space-bounded properties violated: %v", name, err)
		}
	}
}

func TestWorkStealingViolatesAnchoring(t *testing.T) {
	// Sanity check that the validator has teeth: WS does not anchor tasks,
	// so the anchored property must fail for it.
	rec, m := runDC(t, sched.NewWS(), 1024)
	if err := rec.ValidateSpaceBounded(m, sched.DefaultSigma); err == nil {
		t.Fatal("validator accepted a work-stealing schedule as space-bounded")
	} else if !strings.Contains(err.Error(), "anchored") {
		t.Errorf("unexpected validator error: %v", err)
	}
}

func TestValidatorRejectsOversizedAnchor(t *testing.T) {
	m := machine.TwoSocket(2, 64<<10, 4<<10)
	rec := trace.New()
	// Fabricate a task claiming an anchor its size does not befit.
	task := &job.Task{ID: 1, SizeBytes: 1 << 20, AnchorLevel: 1, AnchorNode: 0}
	s := &job.Strand{ID: 1, Task: task, Kind: job.TaskStart, Spawn: 0, Start: 10, End: 20, Proc: 0}
	rec.StrandSpawned(s)
	rec.TaskEnded(task, 20)
	if err := rec.ValidateSpaceBounded(m, 0.5); err == nil {
		t.Fatal("oversized anchor accepted")
	}
}

func TestValidatorRejectsStrandOutsideCluster(t *testing.T) {
	m := machine.TwoSocket(2, 64<<10, 4<<10)
	rec := trace.New()
	task := &job.Task{ID: 1, SizeBytes: 1 << 10, AnchorLevel: 1, AnchorNode: 0}
	// Proc 2 is on socket 1, outside anchor node 0.
	s := &job.Strand{ID: 1, Task: task, Kind: job.TaskStart, Spawn: 0, Start: 10, End: 20, Proc: 2}
	rec.StrandSpawned(s)
	rec.TaskEnded(task, 20)
	if err := rec.ValidateSpaceBounded(m, 0.5); err == nil {
		t.Fatal("strand outside anchor cluster accepted")
	}
}

func TestValidatorRejectsBoundOverflow(t *testing.T) {
	m := machine.TwoSocket(2, 64<<10, 4<<10)
	rec := trace.New()
	// Two concurrent 40KB tasks anchored to the same 64KB L2 exceed M.
	for id := uint64(1); id <= 2; id++ {
		task := &job.Task{ID: id, SizeBytes: 40 << 10, AnchorLevel: 1, AnchorNode: 0}
		s := &job.Strand{ID: id, Task: task, Kind: job.TaskStart, Spawn: 0, Start: 10, End: 100, Proc: 0}
		rec.StrandSpawned(s)
		rec.TaskEnded(task, 100)
	}
	if err := rec.ValidateSpaceBounded(m, 0.99); err == nil {
		t.Fatal("bound overflow accepted")
	} else if !strings.Contains(err.Error(), "bounded") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestValidatorRejectsPreemptionOverlap(t *testing.T) {
	m := machine.TwoSocket(2, 64<<10, 4<<10)
	rec := trace.New()
	task := &job.Task{ID: 1, SizeBytes: 64, AnchorLevel: 0, AnchorNode: 0}
	a := &job.Strand{ID: 1, Task: task, Spawn: 0, Start: 0, End: 50, Proc: 1}
	b := &job.Strand{ID: 2, Task: task, Spawn: 0, Start: 25, End: 75, Proc: 1}
	rec.StrandSpawned(a)
	rec.StrandSpawned(b)
	if err := rec.ValidateSchedule(m); err == nil {
		t.Fatal("overlapping strands on one core accepted")
	}
}

func TestValidatorRejectsStartBeforeSpawn(t *testing.T) {
	m := machine.TwoSocket(2, 64<<10, 4<<10)
	rec := trace.New()
	task := &job.Task{ID: 1, SizeBytes: 64}
	rec.StrandSpawned(&job.Strand{ID: 1, Task: task, Spawn: 100, Start: 50, End: 200, Proc: 0})
	if err := rec.ValidateSchedule(m); err == nil {
		t.Fatal("start-before-spawn accepted")
	}
}

func TestMaxConcurrency(t *testing.T) {
	rec, _ := runDC(t, sched.NewWS(), 2048)
	mc := rec.MaxConcurrency()
	if mc < 1 || mc > 4 {
		t.Errorf("MaxConcurrency = %d, want within [1, cores=4]", mc)
	}
}

func TestWorkSpanSerialChain(t *testing.T) {
	// A purely serial chain (each strand forks exactly one child) has
	// span == work.
	m := machine.Flat(4, 1<<14)
	sp := mem.NewSpace(1, 1)
	var chain func(depth int) job.Job
	chain = func(depth int) job.Job {
		return job.FuncJob(func(ctx job.Ctx) {
			ctx.Work(1000)
			if depth > 0 {
				ctx.Fork(nil, chain(depth-1))
			}
		})
	}
	rec := trace.New()
	if _, err := sim.Run(sim.Config{Machine: m, Space: sp, Scheduler: sched.NewWS(), Seed: 1, Listener: rec}, chain(20)); err != nil {
		t.Fatal(err)
	}
	w, d := rec.WorkSpan()
	if w != d {
		t.Errorf("serial chain: work %d != span %d", w, d)
	}
	if w < 21*1000 {
		t.Errorf("work %d below charged cycles", w)
	}
	if p := rec.Parallelism(); p != 1 {
		t.Errorf("serial parallelism = %v, want 1", p)
	}
}

func TestWorkSpanParallelProgram(t *testing.T) {
	// A wide parallel loop has parallelism well above 1 and span far
	// below work.
	m := machine.Flat(8, 1<<16)
	sp := mem.NewSpace(1, 1)
	root := job.For(0, 256, 1, nil, func(ctx job.Ctx, i int) { ctx.Work(2000) })
	rec := trace.New()
	if _, err := sim.Run(sim.Config{Machine: m, Space: sp, Scheduler: sched.NewWS(), Seed: 2, Listener: rec}, root); err != nil {
		t.Fatal(err)
	}
	w, d := rec.WorkSpan()
	if d >= w/8 {
		t.Errorf("span %d not far below work %d for a 256-wide loop", d, w)
	}
	if p := rec.Parallelism(); p < 8 {
		t.Errorf("parallelism = %.1f, want >= 8", p)
	}
}

func TestParallelismEmptyTrace(t *testing.T) {
	if p := trace.New().Parallelism(); p != 1 {
		t.Errorf("empty trace parallelism = %v", p)
	}
}
