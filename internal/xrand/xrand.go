// Package xrand provides small, fast, deterministic pseudo-random number
// generators used throughout the simulator.
//
// Every source of randomness in the repository — steal-victim selection,
// workload generation, pivot sampling — draws from an explicitly seeded
// xrand.Source so that a simulation run is a pure function of its seed.
// This is what makes schedules replayable and experiments reproducible.
//
// The generator is xoshiro256**, seeded through splitmix64, following the
// reference constructions by Blackman and Vigna. Neither math/rand nor
// math/rand/v2 is used because we need value-type generators that can be
// embedded in hot structs without interface indirection.
package xrand

// Source is a xoshiro256** generator. The zero value is invalid; obtain one
// with New. Source is not safe for concurrent use; each simulated entity
// owns its own Source.
type Source struct {
	s0, s1, s2, s3 uint64
}

// splitmix64 advances x and returns the next splitmix64 output. It is used
// only to expand a single seed word into a full xoshiro state.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a Source seeded from seed. Distinct seeds give statistically
// independent streams; the same seed always gives the same stream.
func New(seed uint64) *Source {
	var s Source
	s.Seed(seed)
	return &s
}

// Seed resets the generator state from a single seed word.
func (s *Source) Seed(seed uint64) {
	x := seed
	s.s0 = splitmix64(&x)
	s.s1 = splitmix64(&x)
	s.s2 = splitmix64(&x)
	s.s3 = splitmix64(&x)
	// A pathological all-zero state cannot occur: splitmix64 is a bijection
	// composed with xor-shifts, and four consecutive outputs are never all
	// zero. Guard anyway so the invariant is locally evident.
	if s.s0|s.s1|s.s2|s.s3 == 0 {
		s.s3 = 0x9e3779b97f4a7c15
	}
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
//
//schedlint:hotpath
func (s *Source) Uint64() uint64 {
	result := rotl(s.s1*5, 7) * 9
	t := s.s1 << 17
	s.s2 ^= s.s0
	s.s3 ^= s.s1
	s.s1 ^= s.s2
	s.s0 ^= s.s3
	s.s2 ^= t
	s.s3 = rotl(s.s3, 45)
	return result
}

// Intn returns a uniformly distributed int in [0, n). It panics if n <= 0.
//
//schedlint:hotpath
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection method: unbiased and division-free
	// in the common case.
	un := uint64(n)
	v := s.Uint64()
	hi, lo := mul64(v, un)
	if lo < un {
		thresh := (-un) % un
		for lo < thresh {
			v = s.Uint64()
			hi, lo = mul64(v, un)
		}
	}
	return int(hi)
}

// mul64 returns the 128-bit product of x and y as (hi, lo).
func mul64(x, y uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	x0, x1 := x&mask32, x>>32
	y0, y1 := y&mask32, y>>32
	w0 := x0 * y0
	t := x1*y0 + w0>>32
	w1 := t & mask32
	w2 := t >> 32
	w1 += x0 * y1
	hi = x1*y1 + w2 + w1>>32
	lo = x * y
	return hi, lo
}

// Int63 returns a non-negative pseudo-random 63-bit integer.
func (s *Source) Int63() int64 {
	return int64(s.Uint64() >> 1)
}

// Float64 returns a uniformly distributed float64 in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Perm returns a pseudo-random permutation of [0, n).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := s.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle pseudo-randomizes the order of n elements using swap.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}
