package xrand

import (
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDistinctSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 produced %d identical outputs in 100 draws", same)
	}
}

func TestZeroSeedUsable(t *testing.T) {
	s := New(0)
	var acc uint64
	for i := 0; i < 64; i++ {
		acc |= s.Uint64()
	}
	if acc == 0 {
		t.Fatal("zero seed produced an all-zero stream")
	}
}

func TestIntnRange(t *testing.T) {
	s := New(7)
	for _, n := range []int{1, 2, 3, 10, 1 << 20} {
		for i := 0; i < 1000; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnRoughUniformity(t *testing.T) {
	s := New(99)
	const n, draws = 8, 80000
	var counts [n]int
	for i := 0; i < draws; i++ {
		counts[s.Intn(n)]++
	}
	want := draws / n
	for i, c := range counts {
		if c < want*9/10 || c > want*11/10 {
			t.Errorf("bucket %d: got %d, want ~%d (±10%%)", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(3)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64) bool {
		s := New(seed)
		n := 1 + s.Intn(64)
		p := s.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestShufflePreservesMultiset(t *testing.T) {
	s := New(5)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, v := range xs {
		sum += v
	}
	s.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, v := range xs {
		got += v
	}
	if got != sum {
		t.Fatalf("shuffle changed the multiset: sum %d != %d", got, sum)
	}
}

func TestMul64(t *testing.T) {
	cases := []struct{ x, y, hi, lo uint64 }{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{1 << 32, 1 << 32, 1, 0},
		{^uint64(0), ^uint64(0), ^uint64(0) - 1, 1},
		{0xdeadbeefcafebabe, 2, 1, 0xbd5b7ddf95fd757c},
	}
	for _, c := range cases {
		hi, lo := mul64(c.x, c.y)
		if hi != c.hi || lo != c.lo {
			t.Errorf("mul64(%#x,%#x) = (%#x,%#x), want (%#x,%#x)", c.x, c.y, hi, lo, c.hi, c.lo)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= s.Uint64()
	}
	_ = sink
}

func BenchmarkIntn(b *testing.B) {
	s := New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink ^= s.Intn(1000)
	}
	_ = sink
}
