package schedsim_test

import (
	"fmt"
	"log"

	"repro/schedsim"
)

// ExampleSession_RunKernel runs a built-in benchmark under two schedulers
// and shows that the space-bounded scheduler incurs fewer outermost-level
// cache misses — deterministic, so the exact comparison is reproducible.
func ExampleSession_RunKernel() {
	m := schedsim.ScaledXeon7560HT(256)
	s := &schedsim.Session{Machine: m, Seed: 1}
	var misses []int64
	for _, name := range []string{"ws", "sb"} {
		res, err := s.RunKernel(name, "rrm", schedsim.BenchOpts{N: 30000, Cutoff: 512})
		if err != nil {
			log.Fatal(err)
		}
		misses = append(misses, res.L3Misses())
	}
	fmt.Println("space-bounded has fewer L3 misses:", misses[1] < misses[0])
	// Output:
	// space-bounded has fewer L3 misses: true
}

// ExampleRun shows a user-defined nested-parallel program: jobs implement
// the terminal-fork discipline, annotated with their memory footprint so
// space-bounded schedulers can anchor them.
func ExampleRun() {
	m, err := schedsim.MachineByName("4x2", 64)
	if err != nil {
		log.Fatal(err)
	}
	sp := schedsim.NewSpace(m, 0)
	arr := sp.NewF64("squares", 1000)
	root := schedsim.For(0, arr.Len(), 100,
		func(lo, hi int) int64 { return int64(hi-lo) * 8 },
		func(ctx schedsim.Ctx, i int) { arr.Write(ctx, i, float64(i*i)) })
	res, err := schedsim.Run(m, sp, "sbd", 1, root)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("arr[9] =", arr.Data[9])
	fmt.Println("ran strands:", res.Strands > 0)
	// Output:
	// arr[9] = 81
	// ran strands: true
}
