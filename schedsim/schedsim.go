// Package schedsim is the public API of the space-bounded-scheduler
// experimental framework — a Go reproduction of "Experimental Analysis of
// Space-Bounded Schedulers" (Simhadri, Blelloch, Fineman, Gibbons, Kyrola;
// SPAA 2014).
//
// The framework separates three components, exactly as the paper's §3:
//
//   - Programs: nested-parallel computations built from Jobs with a
//     terminal Fork (see Job, Ctx, For). Space-bounded schedulers need
//     size annotations, supplied by implementing SBJob or wrapping with
//     Sized.
//   - Schedulers: WS (work stealing), PWS (priority work stealing), SB
//     and SB-D (space-bounded), plus the CilkPlus validation profile —
//     all behind the three call-backs add/get/done (see Scheduler).
//   - Machines: trees of caches in the PMH model (see Machine,
//     Xeon7560, Scaled, or JSON machine files).
//
// A Session runs a program (or one of the paper's seven built-in
// benchmarks) on a machine under a scheduler and reports the paper's
// metrics: the five-way per-core time breakdown (active / add / done /
// get / empty-queue) and exact cache misses at every level.
//
// Quickstart:
//
//	m := schedsim.ScaledXeon7560HT(64)
//	s := &schedsim.Session{Machine: m, Seed: 1}
//	for _, sch := range []string{"ws", "sb"} {
//	    res, err := s.RunKernel(sch, "rrm", schedsim.BenchOpts{N: 100000})
//	    if err != nil { log.Fatal(err) }
//	    fmt.Printf("%-4s  L3 misses %d  time %.3fs\n", sch, res.L3Misses(), res.WallSeconds())
//	}
//
// The experiment drivers regenerating every figure of the paper live in
// cmd/schedbench; single runs with full metric dumps in cmd/pmhsim.
package schedsim

import (
	"repro/internal/core"
	"repro/internal/job"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Program model (§2, §3.1).
type (
	// Job is one task body: sequential code with a terminal Fork.
	Job = job.Job
	// SBJob is a Job annotated with task and strand footprints.
	SBJob = job.SBJob
	// Ctx is the per-strand execution context.
	Ctx = job.Ctx
	// FuncJob adapts a function to Job.
	FuncJob = job.FuncJob
	// Sized wraps a Job with explicit size annotations.
	Sized = job.Sized
	// RangeSize annotates a parallel-for's footprint over a range.
	RangeSize = job.RangeSize
	// Future is a handle for non-nested parallelism (Ctx.ForkFuture /
	// Ctx.ForkAwait), the extension the paper sketches in §3.1.
	Future = job.Future
)

// NewFuture returns an unresolved future handle.
func NewFuture() *Future { return job.NewFuture() }

// For builds a parallel loop from fork/join (grain-sized leaves).
func For(lo, hi, grain int, size RangeSize, body func(Ctx, int)) Job {
	return job.For(lo, hi, grain, size, body)
}

// Machine model (PMH, §2).
type (
	// Machine describes a tree-of-caches machine.
	Machine = machine.Desc
	// Level is one layer of the hierarchy.
	Level = machine.Level
)

// Xeon7560 returns the paper's 4-socket 32-core machine (Fig. 1(a)/Fig. 4).
func Xeon7560() *Machine { return machine.Xeon7560() }

// Xeon7560HT returns the 64-hyperthread configuration used in Figs. 5-10.
func Xeon7560HT() *Machine { return machine.Xeon7560HT() }

// ScaledXeon7560HT returns the HT machine with caches divided by factor —
// the laptop-scale configuration used throughout the tests and examples.
func ScaledXeon7560HT(factor int64) *Machine {
	return machine.Scaled(machine.Xeon7560HT(), factor)
}

// Scaled divides all cache sizes of a machine by factor.
func Scaled(d *Machine, factor int64) *Machine { return machine.Scaled(d, factor) }

// LoadMachine reads a machine description from a JSON file.
func LoadMachine(path string) (*Machine, error) { return machine.Load(path) }

// MachineByName resolves "xeon7560", "xeon7560ht", "4x<n>[ht]", "flat<n>"
// or a JSON file path, optionally scaling caches down by scale.
func MachineByName(name string, scale int64) (*Machine, error) {
	return core.MachineByName(name, scale)
}

// Memory.
type (
	// Space is the simulated address space programs allocate in.
	Space = mem.Space
	// F64 is a simulated float64 array view.
	F64 = mem.F64
	// I64 is a simulated int64 array view.
	I64 = mem.I64
	// Addr is a simulated address.
	Addr = mem.Addr
)

// NewSpace creates an address space for a machine, using linksUsed of its
// DRAM links (the bandwidth knob; pass m.Links for full bandwidth).
func NewSpace(m *Machine, linksUsed int) *Space {
	if linksUsed <= 0 {
		linksUsed = m.Links
	}
	return mem.NewSpace(m.Links, linksUsed)
}

// Schedulers (§4).
type (
	// Scheduler is the add/get/done scheduler interface.
	Scheduler = sched.Scheduler
	// CostModel prices scheduler bookkeeping in cycles.
	CostModel = sched.CostModel
)

// Scheduler parameters of the paper (§5.3 defaults σ=0.5, µ=0.2).
const (
	DefaultSigma = sched.DefaultSigma
	DefaultMu    = sched.DefaultMu
)

// NewScheduler returns a scheduler by name: "ws", "pws", "cilk", "sb",
// "sbd", "pdf"; nil for unknown names.
func NewScheduler(name string) Scheduler { return sched.New(name) }

// NewSB returns a space-bounded scheduler with explicit σ and µ.
func NewSB(sigma, mu float64) Scheduler { return sched.NewSB(sigma, mu) }

// NewSBD returns the distributed-queue space-bounded variant.
func NewSBD(sigma, mu float64) Scheduler { return sched.NewSBD(sigma, mu) }

// SchedulerNames lists the built-in scheduler names.
func SchedulerNames() []string { return sched.Names() }

// Sessions and results.
type (
	// Session binds a machine and settings for runs.
	Session = core.Session
	// BenchOpts sizes a built-in benchmark.
	BenchOpts = core.BenchOpts
	// RunResult is a run's metrics (plus optional validated trace).
	RunResult = core.RunResult
	// Result is the simulator's raw measurement record.
	Result = sim.Result
	// Recorder captures a schedule for validation.
	Recorder = trace.Recorder
)

// Benchmarks lists the built-in benchmark names (the paper's seven).
func Benchmarks() []string { return core.Benchmarks() }

// Run executes root on machine m under the named scheduler with data in
// sp, without the Session conveniences.
func Run(m *Machine, sp *Space, schedName string, seed uint64, root Job) (*RunResult, error) {
	s := &Session{Machine: m, Seed: seed}
	return s.RunJob(schedName, sp, root)
}
