package schedsim_test

import (
	"testing"

	"repro/schedsim"
)

func TestQuickstartFlow(t *testing.T) {
	m := schedsim.ScaledXeon7560HT(256)
	s := &schedsim.Session{Machine: m, Seed: 1}
	var misses []int64
	for _, sch := range []string{"ws", "sb"} {
		res, err := s.RunKernel(sch, "rrm", schedsim.BenchOpts{N: 30000, Cutoff: 512})
		if err != nil {
			t.Fatal(err)
		}
		misses = append(misses, res.L3Misses())
	}
	if misses[1] >= misses[0] {
		t.Errorf("SB misses (%d) not below WS (%d)", misses[1], misses[0])
	}
}

func TestCustomProgramThroughFacade(t *testing.T) {
	m, err := schedsim.MachineByName("4x2", 64)
	if err != nil {
		t.Fatal(err)
	}
	sp := schedsim.NewSpace(m, 0)
	arr := sp.NewF64("xs", 4096)
	root := schedsim.For(0, arr.Len(), 64,
		func(lo, hi int) int64 { return int64(hi-lo) * 8 },
		func(ctx schedsim.Ctx, i int) { arr.Write(ctx, i, float64(i)) })
	res, err := schedsim.Run(m, sp, "sbd", 7, root)
	if err != nil {
		t.Fatal(err)
	}
	if res.WallCycles <= 0 {
		t.Error("no time simulated")
	}
	for i, v := range arr.Data {
		if v != float64(i) {
			t.Fatalf("element %d = %v", i, v)
		}
	}
}

func TestFacadeConstructors(t *testing.T) {
	if schedsim.Xeon7560().NumCores() != 32 {
		t.Error("Xeon7560 wrong")
	}
	if schedsim.Xeon7560HT().NumCores() != 64 {
		t.Error("Xeon7560HT wrong")
	}
	if schedsim.NewScheduler("sb") == nil || schedsim.NewScheduler("zzz") != nil {
		t.Error("NewScheduler lookup wrong")
	}
	if schedsim.NewSB(0.7, 0.2).Name() != "SB" || schedsim.NewSBD(0.5, 0.2).Name() != "SB-D" {
		t.Error("SB constructors wrong")
	}
	if len(schedsim.Benchmarks()) != 8 {
		t.Errorf("Benchmarks = %v", schedsim.Benchmarks())
	}
	if len(schedsim.SchedulerNames()) != 6 {
		t.Errorf("SchedulerNames = %v", schedsim.SchedulerNames())
	}
	if schedsim.DefaultSigma != 0.5 || schedsim.DefaultMu != 0.2 {
		t.Error("default parameters drifted from the paper")
	}
}
