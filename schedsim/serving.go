package schedsim

import (
	"repro/internal/serve"
)

// Online serving (job streams, admission control, tail latency).
type (
	// ServeConfig configures one serving run: machine, scheduler, arrival
	// process and admission policy.
	ServeConfig = serve.Config
	// ServeReport is the outcome: per-request records, tail-latency
	// quantiles, drop counts and the machine-level measurement.
	ServeReport = serve.Report
	// ArrivalProcess generates the request stream.
	ArrivalProcess = serve.ArrivalProcess
	// Admission decides dispatch, queueing or dropping per arrival.
	Admission = serve.Admission
	// JobSpec names one request's kernel, size and input seed.
	JobSpec = serve.JobSpec
	// Arrival is one timestamped request.
	Arrival = serve.Arrival
	// JobRecord is one request's full lifecycle in cycles.
	JobRecord = serve.JobRecord
	// Mix is a weighted workload mix drawn from per arrival.
	Mix = serve.Mix
	// MixEntry is one (kernel, size, weight) component of a Mix.
	MixEntry = serve.MixEntry
	// PoissonConfig parameterizes open-loop Poisson arrivals.
	PoissonConfig = serve.PoissonConfig
	// ClosedLoopConfig parameterizes fixed-concurrency arrivals.
	ClosedLoopConfig = serve.ClosedLoopConfig
)

// Serve executes one serving run to drain and returns its report.
func Serve(cfg ServeConfig) (*ServeReport, error) { return serve.Run(cfg) }

// NewMix builds a validated workload mix.
func NewMix(entries ...MixEntry) (*Mix, error) { return serve.NewMix(entries...) }

// ParseMix parses "kernel:n[:weight],..." into a Mix.
func ParseMix(s string) (*Mix, error) { return serve.ParseMix(s) }

// NewPoisson returns an open-loop Poisson arrival process.
func NewPoisson(cfg PoissonConfig) ArrivalProcess { return serve.NewPoisson(cfg) }

// NewClosedLoop returns a fixed-concurrency arrival process.
func NewClosedLoop(cfg ClosedLoopConfig) ArrivalProcess { return serve.NewClosedLoop(cfg) }

// LoadTrace reads a trace file ('<cycle> <kernel> <n> [seed]' lines) and
// returns a replaying arrival process.
func LoadTrace(path string, defaultSeed uint64) (ArrivalProcess, error) {
	return serve.LoadTrace(path, defaultSeed)
}

// AlwaysAdmit dispatches every arrival immediately.
func AlwaysAdmit() Admission { return serve.AlwaysAdmit() }

// NewBoundedQueue caps jobs in flight with a bounded FIFO wait queue.
func NewBoundedQueue(maxInFlight, maxQueue int) Admission {
	return serve.NewBoundedQueue(maxInFlight, maxQueue)
}

// NewTokenBucket polices the arrival rate: one token per interval cycles,
// up to burst; arrivals finding the bucket empty are dropped.
func NewTokenBucket(interval int64, burst int) Admission {
	return serve.NewTokenBucket(interval, burst)
}

// ParseAdmission parses "always", "queue:<inflight>:<cap>" or
// "token:<interval>:<burst>".
func ParseAdmission(s string) (Admission, error) { return serve.ParseAdmission(s) }
