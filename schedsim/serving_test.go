package schedsim_test

import (
	"testing"

	"repro/schedsim"
)

func TestServeThroughFacade(t *testing.T) {
	m, err := schedsim.MachineByName("4x2", 64)
	if err != nil {
		t.Fatal(err)
	}
	mix, err := schedsim.ParseMix("rrm:2000")
	if err != nil {
		t.Fatal(err)
	}
	adm, err := schedsim.ParseAdmission("queue:4:16")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := schedsim.Serve(schedsim.ServeConfig{
		Machine:   m,
		Scheduler: "sb",
		Arrivals: schedsim.NewPoisson(schedsim.PoissonConfig{
			MeanGap: 100_000,
			MaxJobs: 5,
			Mix:     mix,
			Seed:    3,
		}),
		Admission: adm,
		Seed:      3,
	})
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	if rep.Completed != 5 || rep.StillQueued != 0 {
		t.Fatalf("want 5 completed and an empty queue, got %s", rep)
	}
	if rep.Latency.P99 <= 0 {
		t.Errorf("p99 latency not positive: %v", rep.Latency.P99)
	}
}

func TestServingFacadeConstructors(t *testing.T) {
	if schedsim.AlwaysAdmit().Name() != "always" {
		t.Error("AlwaysAdmit")
	}
	if schedsim.NewBoundedQueue(2, 4).Name() != "queue(2,4)" {
		t.Error("NewBoundedQueue")
	}
	if schedsim.NewTokenBucket(100, 2).Name() != "token(100,2)" {
		t.Error("NewTokenBucket")
	}
	mix, err := schedsim.NewMix(schedsim.MixEntry{Kernel: "quicksort", N: 1000, Weight: 1})
	if err != nil || mix == nil {
		t.Fatalf("NewMix: %v", err)
	}
	cl := schedsim.NewClosedLoop(schedsim.ClosedLoopConfig{
		Concurrency: 1, TotalJobs: 1, Mix: mix, Seed: 1,
	})
	if cl.Name() == "" {
		t.Error("NewClosedLoop")
	}
}
